package store

import (
	"errors"
	"testing"
	"time"
)

func newFaultyFS(t *testing.T) (*Faulty, *FS) {
	t.Helper()
	fs, err := OpenFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return NewFaulty(fs), fs
}

func TestFaultyTransparentByDefault(t *testing.T) {
	f, _ := newFaultyFS(t)
	if err := f.Put("da", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := f.Get("da")
	if err != nil || string(got) != "payload" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	ids, err := f.List()
	if err != nil || len(ids) != 1 {
		t.Fatalf("List = %v, %v", ids, err)
	}
	if err := f.Delete("da"); err != nil {
		t.Fatal(err)
	}
	if f.Puts() != 1 || f.Gets() != 1 {
		t.Fatalf("counters = %d puts, %d gets", f.Puts(), f.Gets())
	}
}

func TestFaultyErrorInjection(t *testing.T) {
	f, inner := newFaultyFS(t)
	boom := errors.New("injected EIO")

	f.SetPutError(boom)
	if err := f.Put("da", []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("Put = %v, want injected error", err)
	}
	// The inner store was never touched: a dead disk, not a torn write.
	if _, err := inner.Get("da"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("inner Get = %v, want ErrNotFound", err)
	}
	f.SetPutError(nil)
	if err := f.Put("da", []byte("x")); err != nil {
		t.Fatalf("Put after disarm: %v", err)
	}

	f.SetGetError(boom)
	if _, err := f.Get("da"); !errors.Is(err, boom) {
		t.Fatalf("Get = %v, want injected error", err)
	}
	f.SetGetError(nil)

	f.SetListError(boom)
	if _, err := f.List(); !errors.Is(err, boom) {
		t.Fatalf("List = %v, want injected error", err)
	}
	f.SetListError(nil)

	f.SetDeleteError(boom)
	if err := f.Delete("da"); !errors.Is(err, boom) {
		t.Fatalf("Delete = %v, want injected error", err)
	}
}

// A torn write (truncating put transform) stores a short payload under a
// valid envelope: the store-level read succeeds and it is the snapshot
// codec's job to reject the bytes. The wrapper must deliver the mangled
// payload, not hide it.
func TestFaultyPutTransform(t *testing.T) {
	f, _ := newFaultyFS(t)
	f.SetPutTransform(Truncate(4))
	if err := f.Put("da", []byte("longer than four")); err != nil {
		t.Fatal(err)
	}
	got, err := f.Get("da")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "long" {
		t.Fatalf("Get = %q, want truncated payload", got)
	}
}

func TestFaultyGetTransform(t *testing.T) {
	f, _ := newFaultyFS(t)
	if err := f.Put("da", []byte{0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.SetGetTransform(FlipBit(0))
	got, err := f.Get("da")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] == 0x00 {
		t.Fatalf("Get = %v, want bit-flipped first byte", got)
	}
}

func TestFaultyReadDelay(t *testing.T) {
	f, _ := newFaultyFS(t)
	if err := f.Put("da", []byte("x")); err != nil {
		t.Fatal(err)
	}
	f.SetReadDelay(30 * time.Millisecond)
	start := time.Now()
	if _, err := f.Get("da"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("Get returned after %v, want >= 30ms", elapsed)
	}
}

func TestTransforms(t *testing.T) {
	if got := Truncate(10)([]byte("short")); string(got) != "short" {
		t.Fatalf("Truncate beyond length = %q", got)
	}
	if got := FlipBit(99)([]byte{0xff}); got[0] == 0xff {
		t.Fatal("FlipBit out of range did not clamp and flip")
	}
	if got := FlipBit(0)(nil); got != nil {
		t.Fatalf("FlipBit on empty = %v", got)
	}
}
