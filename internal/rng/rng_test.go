package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds coincide %d/1000 times", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Errorf("seed 0 produced only %d distinct values", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	s1 := parent.Split()
	s2 := parent.Split()
	matches := 0
	for i := 0; i < 1000; i++ {
		if s1.Uint64() == s2.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Errorf("substreams coincide %d/1000 times", matches)
	}
	// Splitting is itself deterministic.
	p1, p2 := New(9), New(9)
	a, b := p1.Split(), p2.Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(1)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(2)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		f := r.Float64()
		sum += f
		sum2 += f * f
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v", variance)
	}
}

func TestIntn(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for d, c := range counts {
		if math.Abs(float64(c)-n/10) > 500 {
			t.Errorf("digit %d count %d too far from %d", d, c, n/10)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestUniform(t *testing.T) {
	r := New(4)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sum2, sum4 float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sum2 += x * x
		sum4 += x * x * x * x
	}
	mean := sum / n
	variance := sum2 / n
	kurt := sum4 / n
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v", variance)
	}
	if math.Abs(kurt-3) > 0.1 {
		t.Errorf("normal 4th moment = %v, want 3", kurt)
	}
}

func TestGauss2DIsotropy(t *testing.T) {
	r := New(6)
	const n = 100000
	sigma := 50.0
	var sx2, sy2, sxy float64
	for i := 0; i < n; i++ {
		dx, dy := r.Gauss2D(sigma)
		sx2 += dx * dx
		sy2 += dy * dy
		sxy += dx * dy
	}
	if math.Abs(sx2/n-sigma*sigma) > 60 {
		t.Errorf("var(x) = %v, want %v", sx2/n, sigma*sigma)
	}
	if math.Abs(sy2/n-sigma*sigma) > 60 {
		t.Errorf("var(y) = %v, want %v", sy2/n, sigma*sigma)
	}
	if math.Abs(sxy/n) > 30 {
		t.Errorf("cov(x,y) = %v, want 0", sxy/n)
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(7)
	if r.Binomial(0, 0.5) != 0 || r.Binomial(10, 0) != 0 {
		t.Error("degenerate binomial should be 0")
	}
	if r.Binomial(10, 1) != 10 {
		t.Error("p=1 binomial should be n")
	}
	if r.Binomial(-5, 0.5) != 0 {
		t.Error("negative n should be 0")
	}
	for i := 0; i < 1000; i++ {
		v := r.Binomial(20, 0.3)
		if v < 0 || v > 20 {
			t.Fatalf("binomial out of range: %d", v)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(8)
	cases := []struct {
		n int
		p float64
	}{
		{300, 0.02}, {300, 0.39}, {300, 0.85}, {50, 0.5}, {1000, 0.005},
	}
	const trials = 20000
	for _, c := range cases {
		var sum, sum2 float64
		for i := 0; i < trials; i++ {
			v := float64(r.Binomial(c.n, c.p))
			sum += v
			sum2 += v * v
		}
		mean := sum / trials
		variance := sum2/trials - mean*mean
		wantMean := float64(c.n) * c.p
		wantVar := wantMean * (1 - c.p)
		if math.Abs(mean-wantMean) > 4*math.Sqrt(wantVar/trials)+0.05 {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v", c.n, c.p, mean, wantMean)
		}
		if math.Abs(variance-wantVar)/math.Max(1, wantVar) > 0.1 {
			t.Errorf("Binomial(%d,%v) var = %v, want %v", c.n, c.p, variance, wantVar)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	for trial := 0; trial < 50; trial++ {
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				t.Fatalf("invalid permutation: %v", p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleUniformity(t *testing.T) {
	// First element of a shuffled 4-array should be ~uniform.
	r := New(10)
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		a := []int{0, 1, 2, 3}
		r.Shuffle(4, func(i, j int) { a[i], a[j] = a[j], a[i] })
		counts[a[0]]++
	}
	for v, c := range counts {
		if math.Abs(float64(c)-n/4) > 500 {
			t.Errorf("value %d first-position count %d, want ~%d", v, c, n/4)
		}
	}
}

func TestReseedMatchesNew(t *testing.T) {
	// Reseed must reproduce New's stream exactly, including clearing the
	// polar method's cached spare variate: without that, a reseeded
	// generator would leak one Gaussian from the previous substream.
	r := New(123)
	r.Norm() // leave a spare cached
	r.Reseed(456)
	fresh := New(456)
	for i := 0; i < 100; i++ {
		if a, b := r.Uint64(), fresh.Uint64(); a != b {
			t.Fatalf("draw %d: reseeded %x != fresh %x", i, a, b)
		}
	}
	r.Reseed(789)
	fresh2 := New(789)
	for i := 0; i < 100; i++ {
		if a, b := r.Norm(), fresh2.Norm(); a != b {
			t.Fatalf("Norm %d: reseeded %v != fresh %v", i, a, b)
		}
	}
}
