// Package rng provides a small deterministic random-number generator used
// throughout the simulation: xoshiro256★★ seeded through splitmix64, with
// samplers for the distributions the LAD reproduction draws from (uniform,
// 2-D Gaussian resident-point offsets, binomial neighbor counts).
//
// Determinism matters here: Monte-Carlo experiments fan out across a
// worker pool, and each worker derives an independent substream via Split,
// so a given master seed reproduces identical figures regardless of
// GOMAXPROCS or goroutine scheduling.
package rng

import "math"

// Rand is a deterministic pseudo-random source. It is NOT safe for
// concurrent use; share nothing, Split instead.
type Rand struct {
	s        [4]uint64
	spare    float64 // cached second variate of the polar method
	hasSpare bool
}

// splitmix64 advances the seed and returns a well-mixed 64-bit value. It
// is the recommended seeder for xoshiro-family generators.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given 64-bit seed.
func New(seed uint64) *Rand {
	r := new(Rand)
	r.Reseed(seed)
	return r
}

// Reseed resets r to exactly the state New(seed) returns, reusing the
// allocation. Loops that derive one substream per iteration (the
// training loop's per-trial seeds) reseed a per-worker generator instead
// of allocating a fresh one each time; the produced stream is
// bit-identical either way.
func (r *Rand) Reseed(seed uint64) {
	s := seed
	for i := range r.s {
		r.s[i] = splitmix64(&s)
	}
	// xoshiro must not start at the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.spare = 0
	r.hasSpare = false
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits (xoshiro256★★).
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent substream from r, advancing r. Substreams
// obtained from distinct calls are (for all practical purposes) pairwise
// independent; this is how per-worker generators are made.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd2b74407b1ce6e93)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	// Multiply-shift rejection-free mapping is fine for simulation use.
	return int((uint64(r.Uint64()>>11) * uint64(n)) >> 53)
}

// Uniform returns a uniform value in [lo, hi).
func (r *Rand) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal variate using the Marsaglia polar method.
func (r *Rand) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Gauss2D returns an isotropic 2-D Gaussian offset with the given sigma —
// the paper's deployment distribution for a node around its deployment
// point.
func (r *Rand) Gauss2D(sigma float64) (dx, dy float64) {
	return sigma * r.Norm(), sigma * r.Norm()
}

// Binomial returns a draw from Binomial(n, p) by the waiting-time
// (geometric) method: count how many geometric(p) inter-success gaps fit
// in n trials, mirroring to 1−p when p > 0.5 so the gap distribution
// stays sparse. Expected work is O(np + 1) with one math.Log per
// accepted success — ideal for the sparse per-group neighbor counts
// (g_i(z) ≈ 0 for far groups), and the epoch-1 reference stream that
// goldens are pinned to. Simulation epoch ≥ 2 instead draws through the
// precomputed inverse-CDF tables cached in deploy.Model (O(1) per draw,
// distribution-level equivalent); this method remains the exact fallback
// for trial counts outside the cached range.
func (r *Rand) Binomial(n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(n, 1-p)
	}
	// Waiting-time method: count how many geometric(p) gaps fit in n trials.
	// E[work] = np + 1, ideal for the sparse per-group neighbor counts.
	lnq := math.Log1p(-p)
	count := 0
	pos := 0
	for {
		u := r.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		gap := int(math.Log(u)/lnq) + 1
		pos += gap
		if pos > n {
			return count
		}
		count++
	}
}

// Shuffle permutes idx in place (Fisher–Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
