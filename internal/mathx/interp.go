package mathx

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// LinearTable is a piecewise-linear interpolation table over uniformly
// spaced abscissae. It is the data structure the paper prescribes for
// g(z): "divide the range of z into ω equal-size sub-ranges, and store the
// g(z) values for these ω+1 dividing points into a table", with constant
// time lookups.
type LinearTable struct {
	x0, x1 float64   // domain
	step   float64   // (x1-x0)/ω
	ys     []float64 // ω+1 samples
}

// NewLinearTable samples f at omega+1 uniformly spaced points on
// [x0, x1] and returns the lookup table. omega must be >= 1 and x1 > x0.
func NewLinearTable(f Func1, x0, x1 float64, omega int) (*LinearTable, error) {
	if omega < 1 {
		return nil, errors.New("mathx: LinearTable needs omega >= 1")
	}
	if !(x1 > x0) {
		return nil, errors.New("mathx: LinearTable needs x1 > x0")
	}
	ys := make([]float64, omega+1)
	step := (x1 - x0) / float64(omega)
	for i := range ys {
		ys[i] = f(x0 + float64(i)*step)
	}
	return &LinearTable{x0: x0, x1: x1, step: step, ys: ys}, nil
}

// TableFromSamples builds a table directly from precomputed samples,
// which must be the values of the function at omega+1 uniform points.
func TableFromSamples(x0, x1 float64, ys []float64) (*LinearTable, error) {
	if len(ys) < 2 {
		return nil, errors.New("mathx: TableFromSamples needs >= 2 samples")
	}
	if !(x1 > x0) {
		return nil, errors.New("mathx: TableFromSamples needs x1 > x0")
	}
	cp := make([]float64, len(ys))
	copy(cp, ys)
	return &LinearTable{
		x0: x0, x1: x1,
		step: (x1 - x0) / float64(len(ys)-1),
		ys:   cp,
	}, nil
}

// Eval returns the interpolated value at x. Outside the domain the table
// clamps to the boundary values (g(z) tables set the right edge to 0, so
// clamping matches the physics).
func (t *LinearTable) Eval(x float64) float64 {
	if x <= t.x0 {
		return t.ys[0]
	}
	if x >= t.x1 {
		return t.ys[len(t.ys)-1]
	}
	u := (x - t.x0) / t.step
	i := int(u)
	if i >= len(t.ys)-1 { // guard against float rounding at the right edge
		i = len(t.ys) - 2
	}
	frac := u - float64(i)
	return t.ys[i]*(1-frac) + t.ys[i+1]*frac
}

// Omega returns the number of sub-ranges in the table.
func (t *LinearTable) Omega() int { return len(t.ys) - 1 }

// Domain returns the interval the table covers.
func (t *LinearTable) Domain() (x0, x1 float64) { return t.x0, t.x1 }

// Samples returns a copy of the stored ordinates.
func (t *LinearTable) Samples() []float64 {
	cp := make([]float64, len(t.ys))
	copy(cp, t.ys)
	return cp
}

// MaxAbsError measures the worst interpolation error of the table against
// f, probing k points per sub-range.
func (t *LinearTable) MaxAbsError(f Func1, k int) float64 {
	if k < 1 {
		k = 1
	}
	var worst float64
	for i := 0; i < len(t.ys)-1; i++ {
		for j := 0; j <= k; j++ {
			x := t.x0 + (float64(i)+float64(j)/float64(k+1))*t.step
			if e := math.Abs(t.Eval(x) - f(x)); e > worst {
				worst = e
			}
		}
	}
	return worst
}

// String implements fmt.Stringer.
func (t *LinearTable) String() string {
	return fmt.Sprintf("LinearTable[%.3g, %.3g] omega=%d", t.x0, t.x1, t.Omega())
}

// Percentile returns the q-th percentile (q in [0, 100]) of xs using
// linear interpolation between order statistics (the "linear" definition,
// type 7 in the Hyndman–Fan taxonomy). It copies and sorts its input.
// It panics on an empty slice and on q outside [0, 100] (including NaN):
// an out-of-range τ is a caller bug — silently clamping it would turn a
// misconfigured false-positive target into a plausible-looking threshold.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("mathx: Percentile of empty slice")
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	return PercentileSorted(cp, q)
}

// PercentileSorted is Percentile for an already ascending-sorted slice,
// without copying.
func PercentileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("mathx: PercentileSorted of empty slice")
	}
	if !(q >= 0 && q <= 100) { // also catches NaN
		panic(fmt.Sprintf("mathx: percentile q = %v outside [0, 100]", q))
	}
	pos := q / 100 * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}
