package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAdaptiveSimpsonPolynomials(t *testing.T) {
	cases := []struct {
		name string
		f    Func1
		a, b float64
		want float64
	}{
		{"constant", func(x float64) float64 { return 3 }, 0, 5, 15},
		{"linear", func(x float64) float64 { return x }, 0, 2, 2},
		{"quadratic", func(x float64) float64 { return x * x }, 0, 3, 9},
		{"cubic", func(x float64) float64 { return x * x * x }, -1, 1, 0},
		{"quartic", func(x float64) float64 { return x * x * x * x }, 0, 1, 0.2},
	}
	for _, c := range cases {
		got := AdaptiveSimpson(c.f, c.a, c.b, 1e-12, 30)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAdaptiveSimpsonTranscendental(t *testing.T) {
	got := AdaptiveSimpson(math.Sin, 0, math.Pi, 1e-12, 40)
	if math.Abs(got-2) > 1e-9 {
		t.Errorf("∫sin over [0,π] = %v, want 2", got)
	}
	got = AdaptiveSimpson(math.Exp, 0, 1, 1e-12, 40)
	if math.Abs(got-(math.E-1)) > 1e-9 {
		t.Errorf("∫exp over [0,1] = %v, want e−1", got)
	}
	// Gaussian integral over wide range ≈ 1.
	f := func(x float64) float64 { return NormalPDF(x, 0, 1) }
	got = AdaptiveSimpson(f, -8, 8, 1e-12, 40)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("∫N(0,1) = %v, want 1", got)
	}
}

func TestAdaptiveSimpsonOrientation(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	fwd := AdaptiveSimpson(f, 0, 2, 1e-10, 30)
	rev := AdaptiveSimpson(f, 2, 0, 1e-10, 30)
	if math.Abs(fwd+rev) > 1e-9 {
		t.Errorf("reversed bounds should negate: %v vs %v", fwd, rev)
	}
	if got := AdaptiveSimpson(f, 1, 1, 1e-10, 30); got != 0 {
		t.Errorf("empty interval = %v, want 0", got)
	}
}

func TestGaussLegendre16(t *testing.T) {
	// Exact for polynomials up to degree 31.
	f := func(x float64) float64 { return math.Pow(x, 9) - 4*math.Pow(x, 5) + x }
	got := GaussLegendre16(f, -2, 3)
	want := AdaptiveSimpson(f, -2, 3, 1e-13, 40)
	if math.Abs(got-want) > 1e-7 {
		t.Errorf("GL16 = %v, Simpson = %v", got, want)
	}
	// Oscillatory integrand: composite rule should converge to Simpson.
	g := func(x float64) float64 { return math.Sin(10 * x) }
	gc := GaussLegendreComposite(g, 0, 3, 8)
	gw := AdaptiveSimpson(g, 0, 3, 1e-13, 40)
	if math.Abs(gc-gw) > 1e-9 {
		t.Errorf("composite GL16 = %v, want %v", gc, gw)
	}
	// n < 1 behaves like n = 1.
	if got, want := GaussLegendreComposite(g, 0, 1, 0), GaussLegendre16(g, 0, 1); got != want {
		t.Errorf("composite n=0: %v, want %v", got, want)
	}
}

func TestIntegratorsAgreeProperty(t *testing.T) {
	// Adaptive Simpson and composite Gauss–Legendre must agree on smooth
	// random cubics over random intervals.
	f := func(c0, c1, c2, c3, a, w float64) bool {
		c0 = math.Mod(c0, 10)
		c1 = math.Mod(c1, 10)
		c2 = math.Mod(c2, 10)
		c3 = math.Mod(c3, 10)
		a = math.Mod(a, 100)
		b := a + math.Abs(math.Mod(w, 50)) + 0.1
		poly := func(x float64) float64 { return c0 + x*(c1+x*(c2+x*c3)) }
		s := AdaptiveSimpson(poly, a, b, 1e-12, 40)
		g := GaussLegendreComposite(poly, a, b, 4)
		scale := math.Max(1, math.Abs(s))
		return math.Abs(s-g)/scale < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Errorf("root = %v, want sqrt2", root)
	}
	// Exact endpoints.
	if r, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-12, 10); err != nil || r != 0 {
		t.Errorf("endpoint root = %v, %v", r, err)
	}
	// No sign change.
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12, 10); err == nil {
		t.Error("expected sign-change error")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}
