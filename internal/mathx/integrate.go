// Package mathx supplies the numerical substrate the reproduction needs
// and that the Go standard library does not provide: one-dimensional
// quadrature (adaptive Simpson and fixed-order Gauss–Legendre), stable
// binomial probabilities via log-gamma, normal distribution helpers,
// piecewise-linear interpolation tables, root finding, and small dense
// linear solvers for the multilateration baselines.
package mathx

import (
	"errors"
	"math"
)

// ErrNoConvergence is returned by iterative routines that exhaust their
// iteration budget before reaching the requested tolerance.
var ErrNoConvergence = errors.New("mathx: no convergence")

// Func1 is a scalar function of one variable.
type Func1 func(x float64) float64

// AdaptiveSimpson integrates f over [a, b] with adaptive interval
// subdivision until the local Richardson error estimate is below tol.
// maxDepth bounds the recursion (30 is plenty for smooth integrands).
// The routine is exact for cubics on each panel and is the reference
// integrator for Theorem 1's g(z).
func AdaptiveSimpson(f Func1, a, b, tol float64, maxDepth int) float64 {
	if a == b {
		return 0
	}
	if b < a {
		return -AdaptiveSimpson(f, b, a, tol, maxDepth)
	}
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	whole := simpsonPanel(a, b, fa, fm, fb)
	return adaptiveSimpsonRec(f, a, b, fa, fm, fb, whole, tol, maxDepth)
}

func simpsonPanel(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptiveSimpsonRec(f Func1, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm := (a + m) / 2
	rm := (m + b) / 2
	flm, frm := f(lm), f(rm)
	left := simpsonPanel(a, m, fa, flm, fm)
	right := simpsonPanel(m, b, fm, frm, fb)
	if depth <= 0 {
		return left + right
	}
	diff := left + right - whole
	if math.Abs(diff) <= 15*tol {
		return left + right + diff/15
	}
	return adaptiveSimpsonRec(f, a, m, fa, flm, fm, left, tol/2, depth-1) +
		adaptiveSimpsonRec(f, m, b, fm, frm, fb, right, tol/2, depth-1)
}

// gauss-Legendre nodes and weights on [-1, 1], order 16. Values from
// Abramowitz & Stegun table 25.4 (symmetric; only positive nodes listed).
var gl16Nodes = [...]float64{
	0.0950125098376374, 0.2816035507792589,
	0.4580167776572274, 0.6178762444026438,
	0.7554044083550030, 0.8656312023878318,
	0.9445750230732326, 0.9894009349916499,
}

var gl16Weights = [...]float64{
	0.1894506104550685, 0.1826034150449236,
	0.1691565193950025, 0.1495959888165767,
	0.1246289712555339, 0.0951585116824928,
	0.0622535239386479, 0.0271524594117541,
}

// GaussLegendre16 integrates f over [a, b] with a single 16-point
// Gauss–Legendre rule. It is exact for polynomials of degree <= 31 and is
// the fast path used when building g(z) lookup tables.
func GaussLegendre16(f Func1, a, b float64) float64 {
	c := (b + a) / 2
	h := (b - a) / 2
	var sum float64
	for i := range gl16Nodes {
		x := h * gl16Nodes[i]
		sum += gl16Weights[i] * (f(c+x) + f(c-x))
	}
	return h * sum
}

// GaussLegendreComposite splits [a, b] into n equal panels and applies
// GaussLegendre16 on each. n < 1 is treated as 1.
func GaussLegendreComposite(f Func1, a, b float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	h := (b - a) / float64(n)
	var sum float64
	for i := 0; i < n; i++ {
		lo := a + float64(i)*h
		sum += GaussLegendre16(f, lo, lo+h)
	}
	return sum
}

// Bisect finds a root of f in [a, b] (f(a) and f(b) must have opposite
// signs) to within xtol, using at most maxIter halvings.
func Bisect(f Func1, a, b, xtol float64, maxIter int) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, errors.New("mathx: Bisect requires a sign change")
	}
	for i := 0; i < maxIter; i++ {
		m := (a + b) / 2
		fm := f(m)
		if fm == 0 || (b-a)/2 < xtol {
			return m, nil
		}
		if (fm > 0) == (fa > 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return (a + b) / 2, ErrNoConvergence
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
