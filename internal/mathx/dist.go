package mathx

import "math"

// Ln2Pi is ln(2π), used by the Gaussian log-density.
const Ln2Pi = 1.8378770664093454835606594728112

// NormalPDF returns the density of N(mu, sigma²) at x.
func NormalPDF(x, mu, sigma float64) float64 {
	z := (x - mu) / sigma
	return math.Exp(-z*z/2) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalCDF returns P(X <= x) for X ~ N(mu, sigma²).
func NormalCDF(x, mu, sigma float64) float64 {
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// Gauss2DPDF returns the isotropic two-dimensional Gaussian density
//
//	f(x, y) = 1/(2πσ²) · exp(−(x²+y²)/(2σ²))
//
// used by the paper's deployment distribution (Section 3.2), where (x, y)
// is the displacement from the deployment point.
func Gauss2DPDF(dx, dy, sigma float64) float64 {
	s2 := sigma * sigma
	return math.Exp(-(dx*dx+dy*dy)/(2*s2)) / (2 * math.Pi * s2)
}

// RayleighCDF returns P(L <= l) where L is the distance from the mean of an
// isotropic 2-D Gaussian with parameter sigma: 1 − exp(−l²/2σ²). This is
// the closed form behind the first term of Theorem 1.
func RayleighCDF(l, sigma float64) float64 {
	if l <= 0 {
		return 0
	}
	return -math.Expm1(-l * l / (2 * sigma * sigma))
}

// LogChoose returns ln C(n, k) computed via log-gamma, stable for the
// n = 1000 group sizes of Figure 9.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}

// BinomLogPMF returns ln P(X = k) for X ~ Binomial(n, p). Probabilities
// are clamped away from {0, 1} so that impossible observations yield a
// very small but finite log-likelihood instead of −Inf, which keeps the
// MLE localization search well behaved.
func BinomLogPMF(k, n int, p float64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	const eps = 1e-12
	p = Clamp(p, eps, 1-eps)
	return LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
}

// BinomPMF returns P(X = k) for X ~ Binomial(n, p).
func BinomPMF(k, n int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	return math.Exp(BinomLogPMF(k, n, p))
}

// BinomCDF returns P(X <= k) for X ~ Binomial(n, p) by direct summation.
// n is at most ~1000 in this codebase, so the loop is fine.
func BinomCDF(k, n int, p float64) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	var sum float64
	for i := 0; i <= k; i++ {
		sum += BinomPMF(i, n, p)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// BinomMode returns the most likely outcome of Binomial(n, p):
// floor((n+1)p), clamped to [0, n]. The greedy Probability-metric attacker
// drives tainted observations toward this value.
func BinomMode(n int, p float64) int {
	m := int(math.Floor(float64(n+1) * p))
	if m < 0 {
		m = 0
	}
	if m > n {
		m = n
	}
	return m
}
