package mathx

import (
	"math"
	"testing"
)

func BenchmarkAdaptiveSimpson(b *testing.B) {
	f := func(x float64) float64 { return math.Exp(-x*x/2) * math.Cos(3*x) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AdaptiveSimpson(f, 0, 5, 1e-10, 30)
	}
}

func BenchmarkGaussLegendre16(b *testing.B) {
	f := func(x float64) float64 { return math.Exp(-x*x/2) * math.Cos(3*x) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GaussLegendre16(f, 0, 5)
	}
}

func BenchmarkBinomLogPMF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BinomLogPMF(i%300, 300, 0.13)
	}
}

func BenchmarkLinearTableEval(b *testing.B) {
	tb, err := NewLinearTable(math.Sin, 0, 10, 512)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Eval(float64(i%1000) / 100)
	}
}

func BenchmarkPercentile(b *testing.B) {
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = math.Sin(float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Percentile(xs, 99)
	}
}
