package mathx

import "errors"

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mathx: singular matrix")

// SolveLinear solves the dense system A·x = b by Gaussian elimination with
// partial pivoting. A is given in row-major order and is not modified.
// The systems in this repository are tiny (2×2 for multilateration normal
// equations), so no blocking or pivot scaling is attempted.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	if n == 0 || len(b) != n {
		return nil, errors.New("mathx: SolveLinear dimension mismatch")
	}
	// Work on copies.
	m := make([][]float64, n)
	for i := range a {
		if len(a[i]) != n {
			return nil, errors.New("mathx: SolveLinear needs a square matrix")
		}
		m[i] = append([]float64(nil), a[i]...)
		m[i] = append(m[i], b[i])
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if abs(m[r][col]) > abs(m[p][col]) {
				p = r
			}
		}
		if abs(m[p][col]) < 1e-14 {
			return nil, ErrSingular
		}
		m[col], m[p] = m[p], m[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := m[i][n]
		for j := i + 1; j < n; j++ {
			sum -= m[i][j] * x[j]
		}
		x[i] = sum / m[i][i]
	}
	return x, nil
}

// LeastSquares2 solves the overdetermined system A·x = b for x ∈ R² in
// the least-squares sense via the normal equations AᵀA·x = Aᵀb. Each row
// of a must have exactly two entries. This is the MMSE step shared by the
// DV-Hop and Amorphous localization baselines.
func LeastSquares2(a [][]float64, b []float64) (x, y float64, err error) {
	if len(a) < 2 || len(a) != len(b) {
		return 0, 0, errors.New("mathx: LeastSquares2 needs >= 2 equations")
	}
	var s00, s01, s11, t0, t1 float64
	for i, row := range a {
		if len(row) != 2 {
			return 0, 0, errors.New("mathx: LeastSquares2 rows must have 2 columns")
		}
		s00 += row[0] * row[0]
		s01 += row[0] * row[1]
		s11 += row[1] * row[1]
		t0 += row[0] * b[i]
		t1 += row[1] * b[i]
	}
	det := s00*s11 - s01*s01
	if abs(det) < 1e-12 {
		return 0, 0, ErrSingular
	}
	x = (s11*t0 - s01*t1) / det
	y = (s00*t1 - s01*t0) / det
	return x, y, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
