package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalPDFKnownValues(t *testing.T) {
	// Standard normal at 0: 1/sqrt(2π).
	want := 1 / math.Sqrt(2*math.Pi)
	if got := NormalPDF(0, 0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("N(0,1) pdf at 0 = %v, want %v", got, want)
	}
	// Symmetry.
	if math.Abs(NormalPDF(1.3, 0, 1)-NormalPDF(-1.3, 0, 1)) > 1e-15 {
		t.Error("pdf not symmetric")
	}
	// Location/scale shift.
	if math.Abs(NormalPDF(5, 5, 2)-NormalPDF(0, 0, 2)) > 1e-15 {
		t.Error("pdf not shift invariant")
	}
}

func TestNormalCDF(t *testing.T) {
	if got := NormalCDF(0, 0, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Phi(0) = %v, want 0.5", got)
	}
	// Phi(1.96) ≈ 0.975.
	if got := NormalCDF(1.959963985, 0, 1); math.Abs(got-0.975) > 1e-6 {
		t.Errorf("Phi(1.96) = %v, want 0.975", got)
	}
	// CDF is the integral of the PDF.
	integral := AdaptiveSimpson(func(x float64) float64 { return NormalPDF(x, 2, 3) }, -30, 4, 1e-12, 40)
	if got := NormalCDF(4, 2, 3); math.Abs(got-integral) > 1e-8 {
		t.Errorf("CDF = %v, ∫pdf = %v", got, integral)
	}
}

func TestGauss2DPDFIntegratesToOne(t *testing.T) {
	// Radial integration: ∫0..∞ f(ℓ)·2πℓ dℓ = 1.
	sigma := 50.0
	f := func(l float64) float64 { return Gauss2DPDF(l, 0, sigma) * 2 * math.Pi * l }
	got := AdaptiveSimpson(f, 0, 8*sigma, 1e-12, 40)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("2D Gaussian mass = %v, want 1", got)
	}
	// Peak value from the paper's Figure 2 scale: 1/(2πσ²) ≈ 6.4e−5 at σ=50.
	want := 1 / (2 * math.Pi * sigma * sigma)
	if got := Gauss2DPDF(0, 0, sigma); math.Abs(got-want) > 1e-15 {
		t.Errorf("peak = %v, want %v", got, want)
	}
}

func TestRayleighCDF(t *testing.T) {
	sigma := 50.0
	if got := RayleighCDF(0, sigma); got != 0 {
		t.Errorf("Rayleigh(0) = %v", got)
	}
	if got := RayleighCDF(-5, sigma); got != 0 {
		t.Errorf("Rayleigh(-5) = %v", got)
	}
	// Must equal the radial integral of the 2-D Gaussian.
	for _, l := range []float64{10, 50, 100, 200} {
		want := AdaptiveSimpson(func(u float64) float64 {
			return Gauss2DPDF(u, 0, sigma) * 2 * math.Pi * u
		}, 0, l, 1e-12, 40)
		if got := RayleighCDF(l, sigma); math.Abs(got-want) > 1e-9 {
			t.Errorf("Rayleigh(%v) = %v, want %v", l, got, want)
		}
	}
}

func TestLogChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 0, 0},
		{5, 5, 0},
		{5, 2, math.Log(10)},
		{10, 3, math.Log(120)},
		{300, 150, 0}, // filled below
	}
	cases[4].want = func() float64 {
		// Sum of logs as reference.
		var s float64
		for i := 1; i <= 150; i++ {
			s += math.Log(float64(300-150+i)) - math.Log(float64(i))
		}
		return s
	}()
	for _, c := range cases {
		got := LogChoose(c.n, c.k)
		if math.Abs(got-c.want) > 1e-8*math.Max(1, math.Abs(c.want)) {
			t.Errorf("LogChoose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogChoose(5, -1), -1) || !math.IsInf(LogChoose(5, 6), -1) {
		t.Error("out-of-range LogChoose should be -Inf")
	}
}

func TestBinomPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 7, 50, 300} {
		for _, p := range []float64{0.01, 0.2, 0.5, 0.93} {
			var sum float64
			for k := 0; k <= n; k++ {
				pm := BinomPMF(k, n, p)
				if pm < 0 || pm > 1 {
					t.Fatalf("pmf out of range: n=%d p=%v k=%d pm=%v", n, p, k, pm)
				}
				sum += pm
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("pmf sum n=%d p=%v: %v", n, p, sum)
			}
		}
	}
}

func TestBinomPMFEdges(t *testing.T) {
	if BinomPMF(0, 10, 0) != 1 || BinomPMF(3, 10, 0) != 0 {
		t.Error("p=0 edge wrong")
	}
	if BinomPMF(10, 10, 1) != 1 || BinomPMF(9, 10, 1) != 0 {
		t.Error("p=1 edge wrong")
	}
	if BinomPMF(-1, 10, 0.5) != 0 || BinomPMF(11, 10, 0.5) != 0 {
		t.Error("out-of-range k should be 0")
	}
}

func TestBinomPMFMatchesExactSmall(t *testing.T) {
	// n=4, p=0.3: exact values.
	exact := []float64{0.2401, 0.4116, 0.2646, 0.0756, 0.0081}
	for k, want := range exact {
		if got := BinomPMF(k, 4, 0.3); math.Abs(got-want) > 1e-9 {
			t.Errorf("BinomPMF(%d,4,0.3) = %v, want %v", k, got, want)
		}
	}
}

func TestBinomCDF(t *testing.T) {
	if got := BinomCDF(-1, 10, 0.5); got != 0 {
		t.Errorf("CDF(-1) = %v", got)
	}
	if got := BinomCDF(10, 10, 0.5); got != 1 {
		t.Errorf("CDF(n) = %v", got)
	}
	// Monotone non-decreasing in k.
	prev := 0.0
	for k := 0; k <= 20; k++ {
		c := BinomCDF(k, 20, 0.37)
		if c < prev-1e-12 {
			t.Fatalf("CDF decreasing at k=%d", k)
		}
		prev = c
	}
	if math.Abs(prev-1) > 1e-9 {
		t.Errorf("CDF(n) = %v, want 1", prev)
	}
}

func TestBinomModeIsArgmaxProperty(t *testing.T) {
	f := func(nRaw int, pRaw float64) bool {
		n := nRaw%200 + 1
		if n < 1 {
			n = -n + 1
		}
		p := math.Abs(math.Mod(pRaw, 1))
		mode := BinomMode(n, p)
		pm := BinomPMF(mode, n, p)
		// No other k may beat the mode (ties allowed).
		for k := 0; k <= n; k++ {
			if BinomPMF(k, n, p) > pm+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBinomLogPMFFiniteOnImpossible(t *testing.T) {
	// Clamped probabilities keep log-likelihoods finite for the MLE search.
	got := BinomLogPMF(5, 10, 0)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("clamped log pmf should be finite, got %v", got)
	}
	if !math.IsInf(BinomLogPMF(-2, 10, 0.5), -1) {
		t.Error("k<0 should be -Inf")
	}
}
