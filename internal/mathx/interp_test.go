package mathx

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewLinearTableValidation(t *testing.T) {
	f := func(x float64) float64 { return x }
	if _, err := NewLinearTable(f, 0, 1, 0); err == nil {
		t.Error("omega=0 should fail")
	}
	if _, err := NewLinearTable(f, 1, 1, 4); err == nil {
		t.Error("empty domain should fail")
	}
	if _, err := NewLinearTable(f, 2, 1, 4); err == nil {
		t.Error("inverted domain should fail")
	}
}

func TestLinearTableExactOnLinear(t *testing.T) {
	f := func(x float64) float64 { return 3*x - 7 }
	tb, err := NewLinearTable(f, -5, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	for x := -5.0; x <= 5; x += 0.37 {
		if got := tb.Eval(x); math.Abs(got-f(x)) > 1e-12 {
			t.Errorf("Eval(%v) = %v, want %v", x, got, f(x))
		}
	}
}

func TestLinearTableClampsOutside(t *testing.T) {
	f := func(x float64) float64 { return x * x }
	tb, _ := NewLinearTable(f, 0, 10, 20)
	if got := tb.Eval(-5); got != f(0) {
		t.Errorf("left clamp = %v, want %v", got, f(0))
	}
	if got := tb.Eval(15); got != f(10) {
		t.Errorf("right clamp = %v, want %v", got, f(10))
	}
}

func TestLinearTableErrorShrinksWithOmega(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(x) }
	var prev float64 = math.Inf(1)
	for _, omega := range []int{4, 16, 64, 256} {
		tb, err := NewLinearTable(f, 0, 2*math.Pi, omega)
		if err != nil {
			t.Fatal(err)
		}
		e := tb.MaxAbsError(f, 7)
		if e > prev {
			t.Errorf("error grew with omega=%d: %v > %v", omega, e, prev)
		}
		prev = e
	}
	if prev > 1e-3 {
		t.Errorf("omega=256 error too large: %v", prev)
	}
}

func TestLinearTableAccessors(t *testing.T) {
	tb, _ := NewLinearTable(func(x float64) float64 { return x }, 0, 1, 8)
	if tb.Omega() != 8 {
		t.Errorf("Omega = %d", tb.Omega())
	}
	x0, x1 := tb.Domain()
	if x0 != 0 || x1 != 1 {
		t.Errorf("Domain = %v, %v", x0, x1)
	}
	s := tb.Samples()
	if len(s) != 9 {
		t.Fatalf("Samples len = %d", len(s))
	}
	s[0] = 99 // must not alias internal state
	if tb.Eval(0) == 99 {
		t.Error("Samples aliases internal storage")
	}
	if !strings.Contains(tb.String(), "omega=8") {
		t.Errorf("String = %q", tb.String())
	}
}

func TestTableFromSamples(t *testing.T) {
	tb, err := TableFromSamples(0, 2, []float64{0, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := tb.Eval(0.5); got != 0.5 {
		t.Errorf("Eval(0.5) = %v", got)
	}
	if got := tb.Eval(1.5); got != 2.5 {
		t.Errorf("Eval(1.5) = %v", got)
	}
	if _, err := TableFromSamples(0, 1, []float64{1}); err == nil {
		t.Error("single sample should fail")
	}
	if _, err := TableFromSamples(1, 0, []float64{1, 2}); err == nil {
		t.Error("inverted domain should fail")
	}
}

func TestLinearTableEvalWithinHullProperty(t *testing.T) {
	// Interpolated values stay within [min, max] of the samples.
	tb, _ := NewLinearTable(func(x float64) float64 { return math.Sin(3 * x) }, 0, 4, 37)
	s := tb.Samples()
	lo, hi := s[0], s[0]
	for _, v := range s {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	f := func(x float64) bool {
		x = math.Mod(math.Abs(x), 4)
		v := tb.Eval(x)
		return v >= lo-1e-12 && v <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Errorf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 2.5 {
		t.Errorf("p50 = %v", got)
	}
	// Input must be unchanged.
	if xs[0] != 4 {
		t.Error("Percentile mutated its input")
	}
	// Single element.
	if got := Percentile([]float64{7}, 63); got != 7 {
		t.Errorf("singleton percentile = %v", got)
	}
	// Out-of-range and NaN q are caller bugs and must fail loudly
	// instead of clamping to a plausible-looking threshold.
	for _, q := range []float64{-1, 100.5, math.NaN()} {
		q := q
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(xs, %v) should panic", q)
				}
			}()
			Percentile(xs, q)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("empty Percentile should panic")
		}
	}()
	Percentile(nil, 50)
}

func TestPercentileMonotoneProperty(t *testing.T) {
	xs := []float64{5, 3, 9, 1, 7, 2, 8}
	f := func(q1, q2 float64) bool {
		q1 = math.Abs(math.Mod(q1, 100))
		q2 = math.Abs(math.Mod(q2, 100))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Percentile(xs, q1) <= Percentile(xs, q2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
