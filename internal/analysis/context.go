package analysis

// Context is the whole-run state shared by every Pass of one analysis
// invocation. It is what turns the per-package framework into an
// interprocedural one:
//
//   - Facts carries analyzer conclusions across package boundaries (the
//     driver analyzes packages in dependency order, so a Pass can always
//     import the facts of everything it imports).
//   - Loader gives analyzers access to packages their subject does NOT
//     import — wirecompat compares repro/client against
//     repro/internal/serve, which the client deliberately never imports.
//   - The suppression tables are run-global: //lint:ignore directives
//     are collected once per file, every suppression that actually
//     absorbs a diagnostic is recorded, and the suppressions analyzer
//     reports the leftovers (a directive that suppresses nothing is
//     stale documentation).
//   - State gives analyzers a per-run scratch area for cross-package
//     aggregates (lockorder's global lock-class graph), read back by
//     their Finish hooks.

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one //lint:ignore occurrence, reasoned or not.
type Directive struct {
	Pos    token.Position
	Names  []string // analyzer names listed (possibly "ladvet/"-prefixed)
	Reason bool     // a justification followed the name list
}

// Context carries cross-package analysis state for one run.
type Context struct {
	// Loader is the module loader of the run; nil in single-package
	// compatibility mode (the plain Run entry point).
	Loader *Loader
	// Facts is the run's shared fact store.
	Facts *FactStore
	// KnownAnalyzers names every analyzer registered with the driver, so
	// the suppressions analyzer can flag directives naming checks that do
	// not exist. Nil disables the unknown-name check.
	KnownAnalyzers map[string]bool

	state map[string]any

	suppressed map[string]map[int][]string // filename → line → reasoned names
	directives []Directive
	used       map[string]map[int]bool // filename → directive line → absorbed a diagnostic
	seenFiles  map[*ast.File]bool
}

// NewContext returns a fresh run context. loader may be nil when no
// cross-package loading is needed.
func NewContext(loader *Loader) *Context {
	return &Context{
		Loader:     loader,
		Facts:      NewFactStore(),
		state:      make(map[string]any),
		suppressed: make(map[string]map[int][]string),
		used:       make(map[string]map[int]bool),
		seenFiles:  make(map[*ast.File]bool),
	}
}

// State returns the named analyzer's run-wide scratch value, creating it
// with init on first use. Lockorder stashes its global lock-class graph
// here between per-package passes and its Finish hook.
func (c *Context) State(analyzer string, init func() any) any {
	v, ok := c.state[analyzer]
	if !ok {
		v = init()
		c.state[analyzer] = v
	}
	return v
}

// registerFiles scans each file's comments for lint:ignore directives,
// once per file across the whole run. The accepted form is
// staticcheck's:
//
//	//lint:ignore check1[,check2,...] reason
//
// A directive with no reason is recorded (so the suppressions analyzer
// can report it) but NOT honored — the point of the mechanism is that
// every silenced finding documents why it is acceptable.
func (c *Context) registerFiles(fset *token.FileSet, files []*ast.File) {
	for _, f := range files {
		if c.seenFiles[f] {
			continue
		}
		c.seenFiles[f] = true
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				text, ok := strings.CutPrefix(cm.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(cm.Pos())
				names := strings.Split(fields[0], ",")
				c.directives = append(c.directives, Directive{
					Pos:    pos,
					Names:  names,
					Reason: len(fields) >= 2,
				})
				if len(fields) < 2 {
					continue // no reason given: directive not honored
				}
				byLine := c.suppressed[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					c.suppressed[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], names...)
			}
		}
	}
}

// SuppressedAt reports whether a reasoned //lint:ignore directive on
// pos's line (or the line directly above) names analyzer, and records
// the directive as used when it does. Finish hooks call this directly;
// Pass.Reportf routes through it.
func (c *Context) SuppressedAt(analyzer string, pos token.Position) bool {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range c.suppressed[pos.Filename][line] {
			if name == analyzer || name == "ladvet/"+analyzer {
				byLine := c.used[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]bool)
					c.used[pos.Filename] = byLine
				}
				byLine[line] = true
				return true
			}
		}
	}
	return false
}

// Directives returns every //lint:ignore occurrence registered so far,
// in registration order.
func (c *Context) Directives() []Directive {
	return c.directives
}

// DirectiveUsed reports whether the directive at (file, line) absorbed
// at least one diagnostic during this run.
func (c *Context) DirectiveUsed(file string, line int) bool {
	return c.used[file][line]
}
