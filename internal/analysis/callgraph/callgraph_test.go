package callgraph

import (
	"go/types"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

func loadFixture(t *testing.T) *analysis.Package {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := dir
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			t.Fatal("no go.mod above working directory")
		}
		root = parent
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(dir, "testdata", "src", "callgraphfixture"), "callgraphfixture")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func funcByName(t *testing.T, g *Graph, name string) *types.Func {
	t.Helper()
	for _, f := range g.Functions() {
		if f.Name() == name {
			return f
		}
	}
	t.Fatalf("function %q not in graph", name)
	return nil
}

func TestStaticAndDynamicEdges(t *testing.T) {
	pkg := loadFixture(t)
	g := Build(pkg)

	caller := funcByName(t, g, "caller")
	edges := g.Calls(caller)

	var static, dynamic, inGo int
	byName := map[string]int{}
	for _, e := range edges {
		if e.InGo {
			inGo++
			if e.Callee == nil || e.Callee.Name() != "helper" {
				t.Errorf("go-spawned edge resolved to %v, want helper", e.Callee)
			}
			continue
		}
		if e.Callee == nil {
			dynamic++
			continue
		}
		static++
		byName[e.Callee.Name()]++
	}
	if static != 3 {
		t.Errorf("static edges = %d, want 3 (bump, read, helper): %v", static, byName)
	}
	if byName["bump"] != 1 || byName["read"] != 1 || byName["helper"] != 1 {
		t.Errorf("static targets = %v, want bump/read/helper once each", byName)
	}
	// b.bump() through the interface and f() through the func value.
	if dynamic != 2 {
		t.Errorf("dynamic edges = %d, want 2", dynamic)
	}
	if inGo != 1 {
		t.Errorf("go-spawned edges = %d, want 1", inGo)
	}

	callees := g.StaticCallees(caller)
	if len(callees) != 3 {
		t.Errorf("StaticCallees = %d targets, want 3 (go-spawned helper excluded)", len(callees))
	}
}

func TestClosureAttribution(t *testing.T) {
	pkg := loadFixture(t)
	g := Build(pkg)
	cu := funcByName(t, g, "closureUser")
	callees := g.StaticCallees(cu)
	found := false
	for _, c := range callees {
		if c.Name() == "helper" {
			found = true
		}
	}
	if !found {
		t.Errorf("closureUser's literal call to helper not attributed to closureUser: %v", callees)
	}
}
