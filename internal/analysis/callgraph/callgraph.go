// Package callgraph builds the static call graph of one package: for
// every declared function it records each call site and the function
// object the site statically resolves to. Resolution is deliberately
// conservative:
//
//   - direct calls (f(...)) and method calls on concrete receivers
//     (x.M(...), including promoted methods) resolve to their
//     *types.Func — these are the edges interprocedural analyzers may
//     trust;
//   - calls through interface methods, function-typed values, and
//     method expressions produce an edge with a nil Callee — the
//     conservative fallback. Analyzers must treat such sites as "could
//     call anything" (noalloc documents that its transitive check does
//     not chase them; the ladbench 0 allocs/op gate covers dynamic
//     dispatch at runtime);
//   - conversions and builtins are not calls and produce no edge.
//
// Call sites inside function literals are attributed to the enclosing
// declared function: the graph answers "what can running this function
// reach", and a literal's body is code the enclosing function created.
// (Whether the literal runs during the call is an analyzer-level
// question; lockorder, which cares, does its own closure handling.)
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Edge is one call site attributed to a declared function.
type Edge struct {
	Caller *types.Func
	// Callee is the statically resolved target, nil for dynamic sites
	// (interface dispatch, func values).
	Callee *types.Func
	Site   *ast.CallExpr
	Pos    token.Pos
	// InGo marks sites spawned by a go statement: the call happens, but
	// not during the caller's own execution.
	InGo bool
}

// Graph is the static call graph of one package.
type Graph struct {
	edges map[*types.Func][]Edge
	funcs []*types.Func
}

// Build constructs the call graph of pkg.
func Build(pkg *analysis.Package) *Graph {
	return BuildInfo(pkg.Info, pkg.Files)
}

// BuildInfo constructs the call graph from an analysis pass's view of a
// package (its files plus type info).
func BuildInfo(info *types.Info, files []*ast.File) *Graph {
	g := &Graph{edges: make(map[*types.Func][]Edge)}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			caller, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.funcs = append(g.funcs, caller)
			g.walk(info, caller, fd.Body, false)
		}
	}
	sort.Slice(g.funcs, func(i, j int) bool { return g.funcs[i].Pos() < g.funcs[j].Pos() })
	return g
}

func (g *Graph) walk(info *types.Info, caller *types.Func, n ast.Node, inGo bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Attribute everything under the go statement (the spawned
			// call and its argument expressions) with the InGo mark, then
			// stop this walk from descending into it again.
			g.walk(info, caller, n.Call, true)
			return false
		case *ast.CallExpr:
			if edge, ok := resolve(info, caller, n, inGo); ok {
				g.edges[caller] = append(g.edges[caller], edge)
			}
		}
		return true
	})
}

// resolve classifies one call expression. The second result is false
// for non-calls (conversions, builtins).
func resolve(info *types.Info, caller *types.Func, call *ast.CallExpr, inGo bool) (Edge, bool) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return Edge{}, false // conversion
	}
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Directly invoked literal: its body is walked and attributed to
		// the enclosing function already, so the invocation is not an
		// edge to anywhere else.
		return Edge{}, false
	}
	edge := Edge{Caller: caller, Site: call, Pos: call.Pos(), InGo: inGo}
	switch obj := analysis.Callee(info, call).(type) {
	case *types.Builtin:
		return Edge{}, false
	case *types.Func:
		// An interface method resolves to the interface's declaration,
		// not a body: dynamic dispatch, conservative fallback.
		if recv := obj.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
			return edge, true
		}
		edge.Callee = obj
		return edge, true
	default:
		// Func-typed variable, field, or parenthesized expression:
		// dynamic.
		return edge, true
	}
}

// Calls returns the call sites attributed to caller, in source order.
func (g *Graph) Calls(caller *types.Func) []Edge {
	return g.edges[caller]
}

// Functions returns every declared function with a body, in source
// order.
func (g *Graph) Functions() []*types.Func {
	return g.funcs
}

// StaticCallees returns the deduplicated statically resolved targets of
// caller, excluding go-spawned sites, in first-call order.
func (g *Graph) StaticCallees(caller *types.Func) []*types.Func {
	seen := map[*types.Func]bool{}
	var out []*types.Func
	for _, e := range g.edges[caller] {
		if e.Callee == nil || e.InGo || seen[e.Callee] {
			continue
		}
		seen[e.Callee] = true
		out = append(out, e.Callee)
	}
	return out
}
