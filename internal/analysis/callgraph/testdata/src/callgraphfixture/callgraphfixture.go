// Package callgraphfixture exercises the call-graph builder: static
// calls, concrete-receiver method calls, and the conservative dynamic
// fallbacks.
package callgraphfixture

type counter struct{ n int }

func (c *counter) bump() { c.n++ }

func (c counter) read() int { return c.n }

type bumper interface{ bump() }

func helper() int { return 1 }

func caller() int {
	c := &counter{}
	c.bump()                     // static: (*counter).bump
	_ = c.read()                 // static: counter.read
	var b bumper = c             // interface value
	b.bump()                     // dynamic: interface dispatch
	f := helper                  // func value
	_ = f()                      // dynamic: func value call
	go func() { _ = helper() }() // helper edge marked InGo
	xs := make([]int, 2)         // builtin: no edge
	_ = float64(xs[0])           // conversion: no edge
	return helper()              // static: helper
}

func closureUser() {
	f := func() { helper() } // helper edge attributed to closureUser
	f()
}
