package suppressions_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/noalloc"
	"repro/internal/analysis/suppressions"
)

// The suite pairs the audit with a real producer (noalloc) so the
// fixture can hold a genuinely used directive next to the stale ones.
func TestSuppressions(t *testing.T) {
	analysistest.RunSuite(t,
		[]*analysis.Analyzer{noalloc.Analyzer, suppressions.Analyzer},
		nil, "suppressfixture")
}

// A reasonless directive cannot carry a want comment (any trailing text
// would count as its reason), so this case bypasses the fixture
// matcher: the directive must NOT absorb the finding, and the audit
// must call it out.
func TestReasonlessDirectiveNotHonored(t *testing.T) {
	dir := t.TempDir()
	src := `package bare

//lad:noalloc
func hot() *int {
	//lint:ignore noalloc
	return new(int)
}
`
	if err := os.WriteFile(filepath.Join(dir, "bare.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	root := moduleRoot(t)
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "bare")
	if err != nil {
		t.Fatal(err)
	}
	ctx := analysis.NewContext(loader)
	ctx.KnownAnalyzers = map[string]bool{"noalloc": true, "suppressions": true}

	diags, err := analysis.RunPass(pkg, noalloc.Analyzer, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "new(...)") {
		t.Errorf("reasonless directive should not absorb the finding; got %v", diags)
	}

	if _, err := analysis.RunPass(pkg, suppressions.Analyzer, ctx); err != nil {
		t.Fatal(err)
	}
	audit := suppressions.Analyzer.Finish(ctx)
	if len(audit) != 1 || !strings.Contains(audit[0].Message, "a justification must follow") {
		t.Errorf("expected one missing-justification finding, got %v", audit)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
