// Package suppressfixture exercises the suppressions audit alongside a
// real producer (noalloc): a directive that absorbs a finding is clean,
// one naming a nonexistent check or sitting on a non-firing line is
// reported. (The want expectations ride inside the directive comments
// themselves, which conveniently also makes them reasoned.)
package suppressfixture

// sanctioned's directive absorbs a real noalloc finding — the audit has
// nothing to say about it.
//
//lad:noalloc
func sanctioned() map[int]int {
	//lint:ignore noalloc amortized scratch, rebuilt once per epoch
	return map[int]int{}
}

// typoed names a check that is not registered; the directive can never
// fire, which is worse than no directive at all.
//
//lad:noalloc
func typoed() []int {
	//lint:ignore noallocs allocation is amortized // want `names unknown analyzer "noallocs"`
	return make([]int, 4) // want `make\(\.\.\.\) in //lad:noalloc function allocates`
}

// stale sits on a line where noalloc has nothing to report.
func stale() int {
	//lint:ignore noalloc left over from an old refactor // want `unused //lint:ignore noalloc: no diagnostic here to suppress`
	return 1
}
