// Package suppressions audits the //lint:ignore directives themselves.
// The suppression mechanism only keeps its meaning if every directive
// is (a) justified, (b) names a check that exists, and (c) actually
// absorbs a diagnostic — a directive failing any of these is stale
// documentation that silently licenses future regressions.
//
// The analyzer is Finish-only: its per-package Run does nothing except
// let the runner register the package's files (which is how directives
// enter the Context), and the audit happens once at the end of the run,
// after every other analyzer has had the chance to mark directives
// used. The driver must therefore run it in the same Context as the
// analyzers whose suppressions it audits.
package suppressions

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
)

// Analyzer reports unjustified, unknown-check, and unused //lint:ignore
// directives.
var Analyzer = &analysis.Analyzer{
	Name:   "suppressions",
	Doc:    "every //lint:ignore directive must be reasoned, name a real check, and suppress something",
	Run:    func(*analysis.Pass) error { return nil },
	Finish: finish,
}

func finish(ctx *analysis.Context) []analysis.Diagnostic {
	const name = "suppressions"
	var diags []analysis.Diagnostic
	report := func(d analysis.Directive, format string, args ...any) {
		if ctx.SuppressedAt(name, d.Pos) {
			return
		}
		diags = append(diags, analysis.Diagnostic{
			Pos:      d.Pos,
			Analyzer: name,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, d := range ctx.Directives() {
		if !d.Reason {
			report(d, "//lint:ignore %s is not honored: a justification must follow the check names",
				strings.Join(d.Names, ","))
			continue
		}
		knownAll := true
		for _, name := range d.Names {
			bare := strings.TrimPrefix(name, "ladvet/")
			if ctx.KnownAnalyzers != nil && !ctx.KnownAnalyzers[bare] {
				report(d, "//lint:ignore names unknown analyzer %q", name)
				knownAll = false
			}
		}
		if !knownAll {
			continue
		}
		if !ctx.DirectiveUsed(d.Pos.Filename, d.Pos.Line) {
			report(d, "unused //lint:ignore %s: no diagnostic here to suppress",
				strings.Join(d.Names, ","))
		}
	}
	return diags
}
