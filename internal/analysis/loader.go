package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and fully type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages of the enclosing module without
// any network or module cache: packages of this module are parsed from
// source and checked recursively, while standard-library imports are
// satisfied from the toolchain's compiled export data, located with
// `go list -export` and read by the stock gc importer.
type Loader struct {
	Root    string // module root directory (contains go.mod)
	ModPath string // module import path, e.g. "repro"

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
	exports map[string]string // stdlib import path → export-data file
}

// NewLoader returns a Loader for the module rooted at root (a directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("loader: %s is not a module root: %w", abs, err)
	}
	modPath := ""
	for _, line := range strings.Split(string(mod), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("loader: no module directive in %s/go.mod", abs)
	}
	l := &Loader{
		Root:    abs,
		ModPath: modPath,
		fset:    token.NewFileSet(),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		exports: make(map[string]string),
	}
	l.std = importer.ForCompiler(l.fset, "gc", l.lookupExport)
	return l, nil
}

// lookupExport resolves a standard-library import path to its compiled
// export data via the build cache (`go list -export` prints the cache
// entry; the toolchain compiles the package on first demand). This works
// fully offline: only stdlib packages ever reach here, and the gc
// export data is indexed, so transitive imports resolve internally.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path)
		cmd.Dir = l.Root
		out, err := cmd.Output()
		if err != nil {
			detail := ""
			if ee, ok := err.(*exec.ExitError); ok {
				detail = ": " + strings.TrimSpace(string(ee.Stderr))
			}
			return nil, fmt.Errorf("loader: no export data for %q%s", path, detail)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("loader: empty export data path for %q", path)
		}
		l.exports[path] = file
	}
	return os.Open(file)
}

// Import implements types.Importer: already-loaded packages (including
// fixture packages tests pre-register under bare paths via LoadDir) are
// returned from the cache, module-internal paths are loaded from source
// recursively, and everything else comes from gc export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg.Types, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath)))
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load expands Go-style package patterns (".", "./x", "./...",
// "./x/...") relative to the module root and loads every matched
// package, in deterministic path order. Directories named testdata and
// directories whose name starts with "." or "_" are skipped, matching
// the go tool's convention.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		base := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if files, err := goSourceFiles(path); err == nil && len(files) > 0 {
				dirs[path] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	ordered := make([]string, 0, len(dirs))
	for dir := range dirs {
		ordered = append(ordered, dir)
	}
	sort.Strings(ordered)

	pkgs := make([]*Package, 0, len(ordered))
	for _, dir := range ordered {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		importPath := l.ModPath
		if rel != "." {
			importPath = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, importPath)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir, registering
// it under importPath. Test files (_test.go) are excluded: the analyzers
// enforce production-code invariants, and several (rngdiscipline in
// particular) deliberately do not apply to tests.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("loader: import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := goSourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: no Go source files in %s", dir)
	}

	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("loader: type errors in %s: %w", importPath, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("loader: %s: %w", importPath, err)
	}

	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// Packages returns every package loaded so far in dependency order:
// each package appears after everything it imports that this loader
// loaded. The interprocedural driver iterates this, so by the time an
// analyzer visits a package, the facts of all its dependencies exist.
func (l *Loader) Packages() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for path := range l.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	visited := make(map[string]bool, len(paths))
	out := make([]*Package, 0, len(paths))
	var visit func(p *Package)
	visit = func(p *Package) {
		if visited[p.ImportPath] {
			return
		}
		visited[p.ImportPath] = true
		for _, imp := range p.Types.Imports() {
			if dep, ok := l.pkgs[imp.Path()]; ok {
				visit(dep)
			}
		}
		out = append(out, p)
	}
	for _, path := range paths {
		visit(l.pkgs[path])
	}
	return out
}

// goSourceFiles lists the non-test Go files of dir in sorted order.
func goSourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
