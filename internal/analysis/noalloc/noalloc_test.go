package noalloc_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/noalloc"
)

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, noalloc.Analyzer, "noallocfixture")
}

func TestNoAllocCrossPackage(t *testing.T) {
	analysistest.RunSuite(t, []*analysis.Analyzer{noalloc.Analyzer}, []string{"noallochelpers"}, "noalloccross")
}
