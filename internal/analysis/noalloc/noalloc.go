// Package noalloc is the compile-time companion to ladbench's 0 allocs/op
// gate. Functions annotated
//
//	//lad:noalloc
//
// are the measured hot paths (probe kernels, per-observation scoring,
// log-table evaluation); inside their bodies the analyzer flags every
// construct that forces or risks a heap allocation:
//
//   - new(T) and make(...) — except make under the amortized grow-guard
//     idiom `if cap(buf) < n { buf = make(...) }`, which is how the hot
//     paths size their reusable buffers on first touch
//   - slice and map composite literals, and &T{...} (escaping composite);
//     plain struct and array values are fine — they stay on the stack
//   - append to anything but a struct-owned buffer (a field selector):
//     appending into a receiver-owned buffer is amortized reuse,
//     appending to a fresh local is a growing allocation
//   - fmt.* calls (interface boxing plus internal buffering)
//   - string concatenation and string(bytes/runes) conversions
//   - passing non-pointer-shaped, non-constant values to interface
//     parameters (boxing), and calling variadic functions with loose
//     arguments (the ... slice is allocated per call)
//   - closure creation and go statements
//
// The analyzer is deliberately a lint, not an escape analysis: the few
// annotated functions that make a justified amortized allocation (e.g.
// the per-chunk dedup map in Detector.checkRange) document it with a
// //lint:ignore and keep the annotation, so the benchmark gate and the
// static gate stay in agreement about what "hot" means.
package noalloc

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the noalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "//lad:noalloc function bodies must not contain allocation-forcing constructs",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.FuncAnnotated(fd, "noalloc") {
				continue
			}
			c := &checker{pass: pass}
			c.stmt(fd.Body, false)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
}

// stmt walks statements, threading capGuarded: true while inside an if
// whose condition compares cap(...) or len(...), the buffer grow-guard
// idiom under which make is the point of the code.
func (c *checker) stmt(s ast.Stmt, capGuarded bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			c.stmt(sub, capGuarded)
		}
	case *ast.IfStmt:
		c.stmt(s.Init, capGuarded)
		c.expr(s.Cond, capGuarded)
		c.stmt(s.Body, capGuarded || isCapGuard(c.pass, s.Cond))
		c.stmt(s.Else, capGuarded)
	case *ast.ForStmt:
		c.stmt(s.Init, capGuarded)
		c.expr(s.Cond, capGuarded)
		c.stmt(s.Post, capGuarded)
		c.stmt(s.Body, capGuarded)
	case *ast.RangeStmt:
		c.expr(s.X, capGuarded)
		c.stmt(s.Body, capGuarded)
	case *ast.SwitchStmt:
		c.stmt(s.Init, capGuarded)
		c.expr(s.Tag, capGuarded)
		c.stmt(s.Body, capGuarded)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init, capGuarded)
		c.stmt(s.Assign, capGuarded)
		c.stmt(s.Body, capGuarded)
	case *ast.SelectStmt:
		c.stmt(s.Body, capGuarded)
	case *ast.CaseClause:
		for _, e := range s.List {
			c.expr(e, capGuarded)
		}
		for _, sub := range s.Body {
			c.stmt(sub, capGuarded)
		}
	case *ast.CommClause:
		c.stmt(s.Comm, capGuarded)
		for _, sub := range s.Body {
			c.stmt(sub, capGuarded)
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, capGuarded)
	case *ast.GoStmt:
		c.pass.Reportf(s.Pos(), "go statement in //lad:noalloc function allocates a goroutine")
		c.expr(s.Call, capGuarded)
	case *ast.DeferStmt:
		c.expr(s.Call, capGuarded)
	case *ast.AssignStmt:
		c.assign(s, capGuarded)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, capGuarded)
		}
	case *ast.ExprStmt:
		c.expr(s.X, capGuarded)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, capGuarded)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		c.expr(s.X, capGuarded)
	case *ast.SendStmt:
		c.expr(s.Chan, capGuarded)
		c.expr(s.Value, capGuarded)
	}
}

func (c *checker) assign(s *ast.AssignStmt, capGuarded bool) {
	// String += concatenation allocates just like explicit concat.
	if s.Tok.String() == "+=" && len(s.Lhs) == 1 {
		if tv, ok := c.pass.Info.Types[s.Lhs[0]]; ok && isString(tv.Type) {
			c.pass.Reportf(s.Pos(), "string concatenation in //lad:noalloc function allocates")
		}
	}
	for _, e := range s.Rhs {
		c.expr(e, capGuarded)
	}
	for _, e := range s.Lhs {
		// Index/selector bases can contain calls; re-check them.
		if _, ok := e.(*ast.Ident); !ok {
			c.expr(e, capGuarded)
		}
	}
}

func (c *checker) expr(e ast.Expr, capGuarded bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.pass.Reportf(n.Pos(), "closure creation in //lad:noalloc function allocates")
			return false // the closure body runs under its own rules
		case *ast.CompositeLit:
			c.compositeLit(n)
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.pass.Reportf(n.Pos(), "&composite{...} in //lad:noalloc function escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if tv, ok := c.pass.Info.Types[n.X]; ok && isString(tv.Type) && !isConstExpr(c.pass, n) {
					c.pass.Reportf(n.Pos(), "string concatenation in //lad:noalloc function allocates")
				}
			}
		case *ast.CallExpr:
			c.call(n, capGuarded)
		}
		return true
	})
}

func (c *checker) compositeLit(lit *ast.CompositeLit) {
	tv, ok := c.pass.Info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		c.pass.Reportf(lit.Pos(), "slice literal in //lad:noalloc function allocates")
	case *types.Map:
		c.pass.Reportf(lit.Pos(), "map literal in //lad:noalloc function allocates")
	}
	// Struct and array values stay on the stack unless address-taken,
	// which the &composite check catches.
}

func (c *checker) call(call *ast.CallExpr, capGuarded bool) {
	// Builtins.
	switch {
	case analysis.IsBuiltinCall(c.pass.Info, call, "new"):
		c.pass.Reportf(call.Pos(), "new(...) in //lad:noalloc function allocates")
		return
	case analysis.IsBuiltinCall(c.pass.Info, call, "make"):
		if !capGuarded {
			c.pass.Reportf(call.Pos(), "make(...) in //lad:noalloc function allocates (amortized first-touch sizing must sit under an `if cap(buf) < n` guard)")
		}
		return
	case analysis.IsBuiltinCall(c.pass.Info, call, "append"):
		c.append(call)
		return
	}

	// Conversions: string([]byte) / string([]rune) allocate.
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if isString(tv.Type) && len(call.Args) == 1 {
			if atv, ok := c.pass.Info.Types[call.Args[0]]; ok && !isString(atv.Type) && atv.Value == nil {
				c.pass.Reportf(call.Pos(), "string conversion in //lad:noalloc function allocates")
			}
		}
		return
	}

	obj := analysis.Callee(c.pass.Info, call)
	if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		c.pass.Reportf(call.Pos(), "fmt.%s in //lad:noalloc function allocates (boxing + buffering)", obj.Name())
		return
	}
	c.boxing(call, obj)
}

// append is allowed only into struct-owned buffers (field selectors):
// that is the documented amortized-reuse idiom. Appending to a local or
// package-level slice inside a hot path is a per-call growth risk.
func (c *checker) append(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if _, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
		return
	}
	c.pass.Reportf(call.Pos(), "append to non-struct-owned slice in //lad:noalloc function risks per-call growth; reuse a struct-owned buffer")
}

// boxing flags non-pointer-shaped, non-constant arguments passed to
// interface parameters, and loose variadic arguments (the callee's ...
// slice is allocated per call).
func (c *checker) boxing(call *ast.CallExpr, obj types.Object) {
	tv, ok := c.pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	name := "function"
	if obj != nil {
		name = obj.Name()
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // spread of an existing slice: no new backing array here
			}
			c.pass.Reportf(arg.Pos(), "loose variadic argument to %s in //lad:noalloc function allocates the ... slice", name)
			continue
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := c.pass.Info.Types[arg]
		if !ok || atv.Value != nil {
			continue // constants are boxed into read-only data, not per call
		}
		if _, alreadyIface := atv.Type.Underlying().(*types.Interface); alreadyIface {
			continue
		}
		if !pointerShaped(atv.Type) {
			c.pass.Reportf(arg.Pos(), "passing %s by value to interface parameter of %s in //lad:noalloc function boxes it", atv.Type, name)
		}
	}
}

// isCapGuard recognizes conditions containing a cap(...) or len(...)
// comparison — the grow-guard idiom.
func isCapGuard(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op.String() {
		case "<", "<=", ">", ">=", "!=":
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			if inner, ok := ast.Unparen(side).(*ast.CallExpr); ok {
				if analysis.IsBuiltinCall(pass.Info, inner, "cap") || analysis.IsBuiltinCall(pass.Info, inner, "len") {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

// pointerShaped types box into an interface without copying the value
// to the heap: the interface word holds the pointer (or pointer-like
// header word) directly.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}
