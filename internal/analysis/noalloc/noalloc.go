// Package noalloc is the compile-time companion to ladbench's 0 allocs/op
// gate. Functions annotated
//
//	//lad:noalloc
//
// are the measured hot paths (probe kernels, per-observation scoring,
// log-table evaluation); inside their bodies the analyzer flags every
// construct that forces or risks a heap allocation:
//
//   - new(T) and make(...) — except make under the amortized grow-guard
//     idiom `if cap(buf) < n { buf = make(...) }`, which is how the hot
//     paths size their reusable buffers on first touch
//   - slice and map composite literals, and &T{...} (escaping composite);
//     plain struct and array values are fine — they stay on the stack
//   - append to anything but a struct-owned buffer (a field selector):
//     appending into a receiver-owned buffer is amortized reuse,
//     appending to a fresh local is a growing allocation
//   - fmt.* calls (interface boxing plus internal buffering)
//   - string concatenation and string(bytes/runes) conversions
//   - passing non-pointer-shaped, non-constant values to interface
//     parameters (boxing), and calling variadic functions with loose
//     arguments (the ... slice is allocated per call)
//   - closure creation and go statements
//
// The check is TRANSITIVE over the static call graph: an annotated
// function may not reach an allocating function through any chain of
// statically resolved calls. Every declared function — annotated or
// not — gets a silent allocation summary (an AllocFact on its
// *types.Func), helpers propagate summaries through in-package
// recursion by fixpoint and across packages through the run's fact
// store (the driver analyzes packages in dependency order), and each
// call site inside a //lad:noalloc body whose callee carries a fact is
// reported with the full witness chain. The escape hatches compose the
// same way as direct findings:
//
//   - a callee that is itself //lad:noalloc is trusted clean — its own
//     body is checked at its own definition, so chains of annotated
//     hot-path helpers do not re-report
//   - a reasoned //lint:ignore on an allocating line sanctions the
//     allocation for fact purposes too: the helper is summarized clean,
//     so no caller up the chain re-reports the accepted allocation
//   - dynamically dispatched sites (interface methods, func values) are
//     NOT chased — the ladbench 0 allocs/op gate covers dynamic
//     dispatch at runtime — and neither are standard-library callees
//     (fmt.*, the realistic offender, is flagged directly)
//
// The analyzer is deliberately a lint, not an escape analysis: the few
// annotated functions that make a justified amortized allocation (e.g.
// the per-chunk dedup map in Detector.checkRange) document it with a
// //lint:ignore and keep the annotation, so the benchmark gate and the
// static gate stay in agreement about what "hot" means.
package noalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the noalloc check.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc:  "//lad:noalloc function bodies must not reach allocation-forcing constructs through any static call chain",
	Run:  run,
}

// AllocFact marks a function that allocates, directly or through a
// static call chain; Why is the human-readable witness ("allocates:
// slice literal at probe.go:42" or "calls atN4, which ...").
type AllocFact struct{ Why string }

func (*AllocFact) AFact() {}

// NoallocFact marks a //lad:noalloc-annotated function: trusted clean
// by callers (its own body is checked at its definition).
type NoallocFact struct{}

func (*NoallocFact) AFact() {}

func run(pass *analysis.Pass) error {
	decls := map[*types.Func]*ast.FuncDecl{}
	annotated := map[*types.Func]bool{}
	var order []*types.Func
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			order = append(order, fn)
			if analysis.FuncAnnotated(fd, "noalloc") {
				annotated[fn] = true
				pass.ExportObjectFact(fn, &NoallocFact{})
			}
		}
	}

	// Phase 1: per-body direct analysis. Annotated bodies report their
	// violations; every other body is silently summarized (suppression
	// honored: a reasoned //lint:ignore keeps the helper's summary
	// clean, sanctioning the allocation transitively).
	for _, fn := range order {
		fd := decls[fn]
		if annotated[fn] {
			c := &checker{pass: pass, report: pass.Reportf}
			c.stmt(fd.Body, false)
			continue
		}
		rec := &recorder{pass: pass}
		c := &checker{pass: pass, report: rec.record}
		c.stmt(fd.Body, false)
		if rec.why != "" {
			pass.ExportObjectFact(fn, &AllocFact{Why: rec.why})
		}
	}

	// Phase 2: propagate summaries through in-package static calls to a
	// fixpoint (handles helpers defined after their callers and
	// recursion). Cross-package callees already carry facts: the driver
	// visits packages in dependency order.
	g := callgraph.BuildInfo(pass.Info, pass.Files)
	for changed := true; changed; {
		changed = false
		for _, fn := range order {
			if annotated[fn] {
				continue
			}
			var have AllocFact
			if pass.ImportObjectFact(fn, &have) {
				continue
			}
			if why, ok := reachesAlloc(pass, g, fn); ok {
				pass.ExportObjectFact(fn, &AllocFact{Why: why})
				changed = true
			}
		}
	}

	// Phase 3: report call sites inside annotated bodies whose callee
	// carries an allocation summary, with the witness chain.
	for _, fn := range order {
		if !annotated[fn] {
			continue
		}
		for _, e := range g.Calls(fn) {
			if e.Callee == nil || e.InGo {
				continue // dynamic / go-spawned: not chased (see package doc)
			}
			var trusted NoallocFact
			if pass.ImportObjectFact(e.Callee, &trusted) {
				continue
			}
			var af AllocFact
			if !pass.ImportObjectFact(e.Callee, &af) {
				continue
			}
			pass.Reportf(e.Pos, "call to %s in //lad:noalloc function reaches an allocation: %s %s",
				e.Callee.Name(), e.Callee.Name(), af.Why)
		}
	}
	return nil
}

// reachesAlloc looks for one static callee of fn that carries an
// AllocFact, skipping trusted (annotated) callees and call sites the
// author sanctioned with a reasoned //lint:ignore.
func reachesAlloc(pass *analysis.Pass, g *callgraph.Graph, fn *types.Func) (string, bool) {
	for _, e := range g.Calls(fn) {
		if e.Callee == nil || e.InGo {
			continue
		}
		var trusted NoallocFact
		if pass.ImportObjectFact(e.Callee, &trusted) {
			continue
		}
		var af AllocFact
		if !pass.ImportObjectFact(e.Callee, &af) {
			continue
		}
		if pass.SuppressedAt(e.Pos) {
			continue
		}
		return fmt.Sprintf("calls %s, which %s", e.Callee.Name(), af.Why), true
	}
	return "", false
}

// recorder captures the first unsuppressed direct finding of a helper
// body as a fact witness instead of a diagnostic.
type recorder struct {
	pass *analysis.Pass
	why  string
}

func (r *recorder) record(pos token.Pos, format string, args ...any) {
	if r.why != "" || r.pass.SuppressedAt(pos) {
		return
	}
	msg := fmt.Sprintf(format, args...)
	// The checker phrases findings for annotated bodies; a helper's
	// summary drops the annotation clause and pins the position.
	msg = strings.Replace(msg, " in //lad:noalloc function", "", 1)
	p := r.pass.Fset.Position(pos)
	r.why = fmt.Sprintf("allocates at %s:%d (%s)", filepath.Base(p.Filename), p.Line, msg)
}

type checker struct {
	pass   *analysis.Pass
	report func(pos token.Pos, format string, args ...any)
}

// stmt walks statements, threading capGuarded: true while inside an if
// whose condition compares cap(...) or len(...), the buffer grow-guard
// idiom under which make is the point of the code.
func (c *checker) stmt(s ast.Stmt, capGuarded bool) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, sub := range s.List {
			c.stmt(sub, capGuarded)
		}
	case *ast.IfStmt:
		c.stmt(s.Init, capGuarded)
		c.expr(s.Cond, capGuarded)
		c.stmt(s.Body, capGuarded || isCapGuard(c.pass, s.Cond))
		c.stmt(s.Else, capGuarded)
	case *ast.ForStmt:
		c.stmt(s.Init, capGuarded)
		c.expr(s.Cond, capGuarded)
		c.stmt(s.Post, capGuarded)
		c.stmt(s.Body, capGuarded)
	case *ast.RangeStmt:
		c.expr(s.X, capGuarded)
		c.stmt(s.Body, capGuarded)
	case *ast.SwitchStmt:
		c.stmt(s.Init, capGuarded)
		c.expr(s.Tag, capGuarded)
		c.stmt(s.Body, capGuarded)
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init, capGuarded)
		c.stmt(s.Assign, capGuarded)
		c.stmt(s.Body, capGuarded)
	case *ast.SelectStmt:
		c.stmt(s.Body, capGuarded)
	case *ast.CaseClause:
		for _, e := range s.List {
			c.expr(e, capGuarded)
		}
		for _, sub := range s.Body {
			c.stmt(sub, capGuarded)
		}
	case *ast.CommClause:
		c.stmt(s.Comm, capGuarded)
		for _, sub := range s.Body {
			c.stmt(sub, capGuarded)
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, capGuarded)
	case *ast.GoStmt:
		c.report(s.Pos(), "go statement in //lad:noalloc function allocates a goroutine")
		c.expr(s.Call, capGuarded)
	case *ast.DeferStmt:
		c.expr(s.Call, capGuarded)
	case *ast.AssignStmt:
		c.assign(s, capGuarded)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, capGuarded)
		}
	case *ast.ExprStmt:
		c.expr(s.X, capGuarded)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, capGuarded)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		c.expr(s.X, capGuarded)
	case *ast.SendStmt:
		c.expr(s.Chan, capGuarded)
		c.expr(s.Value, capGuarded)
	}
}

func (c *checker) assign(s *ast.AssignStmt, capGuarded bool) {
	// String += concatenation allocates just like explicit concat.
	if s.Tok.String() == "+=" && len(s.Lhs) == 1 {
		if tv, ok := c.pass.Info.Types[s.Lhs[0]]; ok && isString(tv.Type) {
			c.report(s.Pos(), "string concatenation in //lad:noalloc function allocates")
		}
	}
	for _, e := range s.Rhs {
		c.expr(e, capGuarded)
	}
	for _, e := range s.Lhs {
		// Index/selector bases can contain calls; re-check them.
		if _, ok := e.(*ast.Ident); !ok {
			c.expr(e, capGuarded)
		}
	}
}

func (c *checker) expr(e ast.Expr, capGuarded bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.report(n.Pos(), "closure creation in //lad:noalloc function allocates")
			return false // the closure body runs under its own rules
		case *ast.CompositeLit:
			c.compositeLit(n)
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.report(n.Pos(), "&composite{...} in //lad:noalloc function escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op.String() == "+" {
				if tv, ok := c.pass.Info.Types[n.X]; ok && isString(tv.Type) && !isConstExpr(c.pass, n) {
					c.report(n.Pos(), "string concatenation in //lad:noalloc function allocates")
				}
			}
		case *ast.CallExpr:
			c.call(n, capGuarded)
		}
		return true
	})
}

func (c *checker) compositeLit(lit *ast.CompositeLit) {
	tv, ok := c.pass.Info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		c.report(lit.Pos(), "slice literal in //lad:noalloc function allocates")
	case *types.Map:
		c.report(lit.Pos(), "map literal in //lad:noalloc function allocates")
	}
	// Struct and array values stay on the stack unless address-taken,
	// which the &composite check catches.
}

func (c *checker) call(call *ast.CallExpr, capGuarded bool) {
	// Builtins.
	switch {
	case analysis.IsBuiltinCall(c.pass.Info, call, "new"):
		c.report(call.Pos(), "new(...) in //lad:noalloc function allocates")
		return
	case analysis.IsBuiltinCall(c.pass.Info, call, "make"):
		if !capGuarded {
			c.report(call.Pos(), "make(...) in //lad:noalloc function allocates (amortized first-touch sizing must sit under an `if cap(buf) < n` guard)")
		}
		return
	case analysis.IsBuiltinCall(c.pass.Info, call, "append"):
		c.append(call)
		return
	}

	// Conversions: string([]byte) / string([]rune) allocate.
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if isString(tv.Type) && len(call.Args) == 1 {
			if atv, ok := c.pass.Info.Types[call.Args[0]]; ok && !isString(atv.Type) && atv.Value == nil {
				c.report(call.Pos(), "string conversion in //lad:noalloc function allocates")
			}
		}
		return
	}

	obj := analysis.Callee(c.pass.Info, call)
	if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
		c.report(call.Pos(), "fmt.%s in //lad:noalloc function allocates (boxing + buffering)", obj.Name())
		return
	}
	c.boxing(call, obj)
}

// append is allowed only into struct-owned buffers (field selectors):
// that is the documented amortized-reuse idiom. Appending to a local or
// package-level slice inside a hot path is a per-call growth risk.
func (c *checker) append(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if _, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
		return
	}
	c.report(call.Pos(), "append to non-struct-owned slice in //lad:noalloc function risks per-call growth; reuse a struct-owned buffer")
}

// boxing flags non-pointer-shaped, non-constant arguments passed to
// interface parameters, and loose variadic arguments (the callee's ...
// slice is allocated per call).
func (c *checker) boxing(call *ast.CallExpr, obj types.Object) {
	tv, ok := c.pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	name := "function"
	if obj != nil {
		name = obj.Name()
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // spread of an existing slice: no new backing array here
			}
			c.report(arg.Pos(), "loose variadic argument to %s in //lad:noalloc function allocates the ... slice", name)
			continue
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := c.pass.Info.Types[arg]
		if !ok || atv.Value != nil {
			continue // constants are boxed into read-only data, not per call
		}
		if _, alreadyIface := atv.Type.Underlying().(*types.Interface); alreadyIface {
			continue
		}
		if !pointerShaped(atv.Type) {
			c.report(arg.Pos(), "passing %s by value to interface parameter of %s in //lad:noalloc function boxes it", atv.Type, name)
		}
	}
}

// isCapGuard recognizes conditions containing a cap(...) or len(...)
// comparison — the grow-guard idiom.
func isCapGuard(pass *analysis.Pass, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op.String() {
		case "<", "<=", ">", ">=", "!=":
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			if inner, ok := ast.Unparen(side).(*ast.CallExpr); ok {
				if analysis.IsBuiltinCall(pass.Info, inner, "cap") || analysis.IsBuiltinCall(pass.Info, inner, "len") {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isConstExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}

// pointerShaped types box into an interface without copying the value
// to the heap: the interface word holds the pointer (or pointer-like
// header word) directly.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}
