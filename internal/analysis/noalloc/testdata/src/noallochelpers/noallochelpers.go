// Package noallochelpers is a dependency fixture: its allocation
// summaries must be visible to packages that import it when the suite
// analyzes packages in dependency order.
package noallochelpers

// Grow allocates; importers that are //lad:noalloc must not reach it.
func Grow(xs []int) []int {
	out := make([]int, len(xs)+1)
	copy(out, xs)
	return out
}

// Sum is allocation-free.
func Sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
