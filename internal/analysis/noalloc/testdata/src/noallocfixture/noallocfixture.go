// Package noallocfixture exercises the noalloc analyzer: every
// allocation-forcing construct fires inside //lad:noalloc bodies, the
// grow-guard and struct-owned-append idioms do not, and unannotated
// functions are out of scope.
package noallocfixture

import "fmt"

type buffers struct {
	buf  []float64
	tags []int
}

// hot is the idiomatic zero-alloc steady-state shape: first-touch
// sizing under a cap guard, then reuse.
//
//lad:noalloc
func hot(b *buffers, xs []float64) float64 {
	if cap(b.buf) < len(xs) {
		b.buf = make([]float64, len(xs))
	}
	b.buf = b.buf[:len(xs)]
	s := 0.0
	for i, x := range xs {
		b.buf[i] = x * x
		s += x
	}
	return s
}

//lad:noalloc
func builtins(b *buffers, xs []float64) int {
	ys := make([]float64, len(xs)) // want `make\(\.\.\.\) in //lad:noalloc`
	p := new(buffers)              // want `new\(\.\.\.\) in //lad:noalloc`
	q := &buffers{}                // want `escapes to the heap`
	lit := []int{1, 2, 3}          // want `slice literal`
	m := map[int]int{}             // want `map literal`
	var local []int
	local = append(local, 1)                                 // want `append to non-struct-owned slice`
	b.tags = append(b.tags, len(ys)+len(p.tags)+len(q.tags)) // struct-owned: allowed
	return lit[0] + m[0] + local[0]
}

//lad:noalloc
func strings(b *buffers, bs []byte) string {
	s := "a"
	s += "b"        // want `string concatenation`
	t := s + "c"    // want `string concatenation`
	u := string(bs) // want `string conversion`
	fmt.Println(t)  // want `fmt\.Println`
	return u
}

//lad:noalloc
func spawning(b *buffers) {
	go cold()                    // want `go statement`
	f := func() int { return 1 } // want `closure creation`
	_ = f()
}

type pair struct{ a, b float64 }

//lad:noalloc
func boxing(v pair, p *buffers) {
	take(v)     // want `boxes it`
	take(p)     // pointer-shaped: allowed
	varargs(1)  // want `loose variadic argument`
	varargs()   // empty variadic: allowed
	spread(nil) // conversion-free nil: allowed
}

func take(v any) int {
	_, ok := v.(*buffers)
	if ok {
		return 1
	}
	return 0
}
func varargs(vs ...int) int { return len(vs) }
func spread(vs []int) int   { return varargs(vs...) }

// cold is unannotated: the same constructs are fine here.
func cold() []int {
	xs := make([]int, 4)
	xs = append(xs, 5)
	return xs
}

// scale allocates only through a helper — the loophole the transitive
// check closes.
//
//lad:noalloc
func scale(xs []float64) []float64 {
	return helperAlloc(xs) // want `reaches an allocation: helperAlloc allocates at noallocfixture\.go:\d+`
}

func helperAlloc(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	return out
}

// deep reaches the same allocation two hops away; the witness chain
// names every intermediate helper.
//
//lad:noalloc
func deep(xs []float64) []float64 {
	return middle(xs) // want `reaches an allocation: middle calls helperAlloc, which allocates`
}

func middle(xs []float64) []float64 { return helperAlloc(xs) }

// trustedChain calls an annotated helper: trusted clean by contract
// (hot's own body is checked at hot's definition).
//
//lad:noalloc
func trustedChain(b *buffers, xs []float64) float64 { return hot(b, xs) }

// sanctionedHelper documents its amortized allocation with a reasoned
// ignore, so its summary stays clean and callers do not re-report it.
//
//lad:noalloc
func sanctioned(xs []float64) int { return sanctionedHelper(xs) }

func sanctionedHelper(xs []float64) int {
	//lint:ignore noalloc amortized scratch map, rebuilt once per batch
	m := map[int]int{}
	for i := range xs {
		m[i] = i
	}
	return len(m)
}

// Mutually recursive allocation-free helpers stay clean through the
// fixpoint.
//
//lad:noalloc
func viaEven(n int) bool { return even(n) }

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

// Dynamically dispatched sites are not chased (the ladbench 0 allocs/op
// gate covers them at runtime), even when the value could allocate.
//
//lad:noalloc
func viaFuncValue(f func() []int) int { return len(f()) }

// The pool-miss pattern: the helper's CALL EDGE to an allocating
// constructor carries the reasoned ignore (the constructor keeps its
// allocation fact for other callers), so the annotated caller is clean.
//
//lad:noalloc
func viaEdge() int { return edgeHelper() }

func edgeHelper() int {
	//lint:ignore noalloc pool-miss path: constructed once, recycled thereafter
	return construct()
}

func construct() int {
	p := new(int)
	return *p
}

// directToConstruct proves the sanction above is edge-scoped: a
// different caller of the same constructor still reports.
//
//lad:noalloc
func directToConstruct() int {
	return construct() // want `call to construct in //lad:noalloc function reaches an allocation: construct allocates at noallocfixture\.go:\d+`
}
