// Package noalloccross proves transitive noalloc works across package
// boundaries: the allocating helper lives in the imported dependency
// fixture, whose facts were exported when the suite analyzed it first.
package noalloccross

import "noallochelpers"

//lad:noalloc
func reaches(xs []int) []int {
	return grow(xs) // want `reaches an allocation: grow calls Grow, which allocates at noallochelpers\.go:\d+`
}

func grow(xs []int) []int { return noallochelpers.Grow(xs) }

//lad:noalloc
func clean(xs []int) int {
	return noallochelpers.Sum(xs)
}
