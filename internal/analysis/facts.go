package analysis

// Facts are how analyzers become interprocedural without re-analyzing
// callees at every call site: an analyzer visiting a package in
// dependency order attaches conclusions ("this function allocates",
// "this helper requires p.mu held") to types.Objects, and analyzers of
// downstream packages import them. This mirrors x/tools'
// analysis.Fact, with one deliberate simplification: the whole run
// shares a single token.FileSet and types.Package graph (the Loader
// type-checks everything in one process), so facts are plain in-memory
// values keyed by object identity — no gob serialization, no fact
// surrogates for export data.

import (
	"go/types"
	"reflect"
)

// Fact is a piece of analyzer-derived information attached to a
// types.Object. Implementations must be pointer types; the AFact marker
// method keeps arbitrary values from being stored by accident.
type Fact interface{ AFact() }

// FactStore holds every exported fact of one analysis run. Facts are
// keyed by (object, concrete fact type): one object can carry one fact
// of each type, and any analyzer may import any fact type — the
// requiresheld analyzer's lock preconditions, for example, feed both
// guardedby's and lockorder's entry states.
type FactStore struct {
	facts map[types.Object][]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: make(map[types.Object][]Fact)}
}

// Export attaches fact to obj, replacing an existing fact of the same
// concrete type.
func (s *FactStore) Export(obj types.Object, fact Fact) {
	if obj == nil || fact == nil {
		return
	}
	t := reflect.TypeOf(fact)
	list := s.facts[obj]
	for i, old := range list {
		if reflect.TypeOf(old) == t {
			list[i] = fact
			return
		}
	}
	s.facts[obj] = append(list, fact)
}

// Import copies obj's fact of ptr's concrete type into ptr, reporting
// whether one was found. ptr must be a non-nil pointer to a fact value,
// exactly as with x/tools' Pass.ImportObjectFact.
func (s *FactStore) Import(obj types.Object, ptr Fact) bool {
	if s == nil || obj == nil || ptr == nil {
		return false
	}
	t := reflect.TypeOf(ptr)
	for _, f := range s.facts[obj] {
		if reflect.TypeOf(f) == t {
			reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// Has reports whether obj carries a fact of ptr's concrete type without
// copying it.
func (s *FactStore) Has(obj types.Object, ptr Fact) bool {
	if s == nil || obj == nil || ptr == nil {
		return false
	}
	t := reflect.TypeOf(ptr)
	for _, f := range s.facts[obj] {
		if reflect.TypeOf(f) == t {
			return true
		}
	}
	return false
}
