package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// Callee resolves the object a call expression invokes: the function or
// method object for `f(...)` and `x.f(...)`, nil for indirect calls
// through function values, conversions, and builtins.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		return info.Uses[fn.Sel]
	}
	return nil
}

// IsBuiltinCall reports whether the call invokes the named builtin
// (new, make, append, cap, len, ...).
func IsBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// ExprString renders an expression compactly (for keying lock state and
// for diagnostics).
func ExprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, e)
	return buf.String()
}
