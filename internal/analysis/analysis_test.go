package analysis_test

import (
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// writeModule lays out a throwaway single-file module and returns its
// root.
func writeModule(t *testing.T, pkgDir, file, src string) string {
	t.Helper()
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module throwaway\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(root, pkgDir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, file), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

// A package that fails type-checking must surface the first type error,
// not come back as a half-checked package the analyzers would then
// misread.
func TestLoaderReportsTypeErrors(t *testing.T) {
	root := writeModule(t, "broken", "broken.go", `package broken

func f() int { return "not an int" }
`)
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	_, err = loader.LoadDir(filepath.Join(root, "broken"), "throwaway/broken")
	if err == nil {
		t.Fatal("expected a type error, got none")
	}
	if !strings.Contains(err.Error(), "type errors in throwaway/broken") {
		t.Errorf("error should name the failing package, got: %v", err)
	}
}

// A missing directory must error rather than return an empty package.
func TestLoaderMissingDir(t *testing.T) {
	root := writeModule(t, "ok", "ok.go", "package ok\n")
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.LoadDir(filepath.Join(root, "absent"), "throwaway/absent"); err == nil {
		t.Fatal("expected an error for a nonexistent package directory")
	}
}

type markFact struct{ N int }

func (*markFact) AFact() {}

type otherFact struct{ S string }

func (*otherFact) AFact() {}

// Facts are keyed by (object, concrete type): re-export replaces,
// import copies by type, and distinct fact types coexist on one object.
func TestFactStore(t *testing.T) {
	s := analysis.NewFactStore()
	obj := types.NewVar(token.NoPos, nil, "x", types.Typ[types.Int])

	var got markFact
	if s.Import(obj, &got) {
		t.Fatal("import from empty store should fail")
	}

	s.Export(obj, &markFact{N: 1})
	s.Export(obj, &otherFact{S: "side"})
	s.Export(obj, &markFact{N: 2}) // replaces N:1

	if !s.Import(obj, &got) || got.N != 2 {
		t.Errorf("want replaced fact N=2, got %+v", got)
	}
	var other otherFact
	if !s.Import(obj, &other) || other.S != "side" {
		t.Errorf("distinct fact types must coexist, got %+v", other)
	}
	if s.Has(types.NewVar(token.NoPos, nil, "y", types.Typ[types.Int]), &got) {
		t.Error("facts must not leak across objects")
	}

	// nil object / nil fact are ignored, not panics.
	s.Export(nil, &markFact{})
	if s.Import(nil, &got) || s.Has(obj, nil) {
		t.Error("nil object/fact must be inert")
	}
}
