// Package rngdiscipline enforces the repository's randomness policy:
// every random draw in simulation, training, and localization code must
// flow through repro/internal/rng (the counter-seeded, splittable
// xoshiro generator), because the paper's detection-rate and FPR claims
// only reproduce when the whole pipeline is bit-deterministic for a
// given master seed.
//
// Three rules:
//
//  1. The packages under its purview must not import math/rand,
//     math/rand/v2, or crypto/rand. Stdlib rand is seeded from global
//     process state and crypto/rand is nondeterministic by design;
//     either one silently breaks replay.
//  2. Seeds must not be derived from the wall clock: a time.Now (or
//     time.Since) call may not appear in the arguments of any
//     repro/internal/rng function or method (New, Reseed, ...).
//  3. A *rng.Rand is documented share-nothing. A goroutine must own its
//     Rand: capturing one as a free variable in a `go func(){...}()`
//     closure is flagged (Split a child and pass it by value instead),
//     as is declaring a struct that holds a *rng.Rand next to sync
//     primitives — the tell-tale shape of a generator shared across
//     goroutines.
//
// The cmd/ladvet driver applies this analyzer to the deterministic core
// (internal/{rng,deploy,localize,core,attack,sim,experiment,mathx});
// test files are never loaded.
package rngdiscipline

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/analysis"
)

const rngPath = "repro/internal/rng"

var forbiddenImports = map[string]string{
	"math/rand":    "globally-seeded stdlib rand breaks deterministic replay",
	"math/rand/v2": "globally-seeded stdlib rand breaks deterministic replay",
	"crypto/rand":  "crypto/rand is nondeterministic by design",
}

// Analyzer is the rngdiscipline check.
var Analyzer = &analysis.Analyzer{
	Name: "rngdiscipline",
	Doc:  "all randomness must flow through repro/internal/rng, seeded deterministically, one Rand per goroutine",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		checkImports(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkTimeSeed(pass, n)
			case *ast.GoStmt:
				checkGoCapture(pass, n)
			case *ast.TypeSpec:
				checkSharedStruct(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkImports(pass *analysis.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if reason, ok := forbiddenImports[path]; ok {
			pass.Reportf(imp.Pos(), "import of %q is forbidden (%s); use repro/internal/rng", path, reason)
		}
	}
}

// checkTimeSeed flags time.Now/time.Since appearing anywhere inside the
// arguments of a call into repro/internal/rng (rng.New, Rand.Reseed,
// ...): seeds must derive from the experiment's master seed, never from
// the wall clock.
func checkTimeSeed(pass *analysis.Pass, call *ast.CallExpr) {
	obj := analysis.Callee(pass.Info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != rngPath {
		return
	}
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := analysis.Callee(pass.Info, inner)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "time" {
				return true
			}
			if callee.Name() == "Now" || callee.Name() == "Since" {
				pass.Reportf(inner.Pos(), "time-derived RNG seed passed to %s.%s: derive seeds from the experiment master seed", obj.Pkg().Name(), obj.Name())
			}
			return true
		})
	}
}

// checkGoCapture flags `go func(){ ... r.Float64() ... }()` where r is a
// *rng.Rand declared outside the closure: the goroutine and its spawner
// would share one generator. Passing a Rand as an explicit argument is
// the sanctioned handoff (ownership transfer after Split), so only free
// variables are flagged.
func checkGoCapture(pass *analysis.Pass, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	seen := map[types.Object]bool{}
	// Idents appearing as the Sel of a selector are field/method names,
	// not variable references; skip them.
	selNames := map[*ast.Ident]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			selNames[sel.Sel] = true
		}
		return true
	})
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || selNames[id] {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the closure (or a parameter of it)
		}
		if analysis.IsNamedType(v.Type(), rngPath, "Rand") {
			seen[v] = true
			pass.Reportf(id.Pos(), "*rng.Rand %q captured by goroutine: Rand is share-nothing, Split() a child and pass it in", id.Name)
		}
		return true
	})
}

// checkSharedStruct flags struct types that pair a *rng.Rand field with
// sync or sync/atomic fields: synchronization primitives mark the struct
// as crossing goroutines, and a Rand must not cross with it.
func checkSharedStruct(pass *analysis.Pass, spec *ast.TypeSpec) {
	st, ok := spec.Type.(*ast.StructType)
	if !ok {
		return
	}
	var randField *ast.Field
	hasSync := false
	for _, field := range st.Fields.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok {
			continue
		}
		if analysis.IsNamedType(tv.Type, rngPath, "Rand") {
			randField = field
		}
		if t, ok := deref(tv.Type).(*types.Named); ok && t.Obj().Pkg() != nil {
			switch t.Obj().Pkg().Path() {
			case "sync", "sync/atomic":
				hasSync = true
			}
		}
	}
	if randField != nil && hasSync {
		name := "(anonymous)"
		if len(randField.Names) > 0 {
			name = randField.Names[0].Name
		}
		pass.Reportf(randField.Pos(), "struct %s holds *rng.Rand field %q alongside sync primitives: a Rand is share-nothing, keep one per goroutine (Split children)", spec.Name.Name, name)
	}
}

func deref(t types.Type) types.Type {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = ptr.Elem()
	}
}
