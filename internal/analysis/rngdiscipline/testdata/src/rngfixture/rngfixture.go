// Package rngfixture exercises the rngdiscipline analyzer: wall-clock
// seeds, goroutine-captured Rands, and sync-adjacent Rand fields fire;
// master-seed derivation and Split handoff do not.
package rngfixture

import (
	"sync"
	"time"

	"repro/internal/rng"
)

// seedFromClock derives a seed from the wall clock.
func seedFromClock() *rng.Rand {
	return rng.New(uint64(time.Now().UnixNano())) // want `time-derived RNG seed`
}

// reseedFromClock reseeds from the clock through a method call.
func reseedFromClock(r *rng.Rand) {
	r.Reseed(uint64(time.Since(time.Time{}).Nanoseconds())) // want `time-derived RNG seed`
}

// goodSeed derives from the experiment master seed.
func goodSeed(master uint64) *rng.Rand {
	return rng.New(master + 17)
}

// capture shares one Rand between the spawner and a goroutine.
func capture(r *rng.Rand, wg *sync.WaitGroup) float64 {
	go func() {
		defer wg.Done()
		_ = r.Float64() // want `captured by goroutine`
	}()
	return r.Float64()
}

// handoff transfers ownership of a Split child explicitly — sanctioned.
func handoff(r *rng.Rand) {
	child := r.Split()
	go consume(child)
}

func consume(r *rng.Rand) { _ = r.Float64() }

// sharedPool pairs a Rand with a mutex: the shape of a generator shared
// across goroutines.
type sharedPool struct {
	mu  sync.Mutex
	gen *rng.Rand // want `alongside sync primitives`
}

// perWorker owns its Rand with no synchronization — one per goroutine.
type perWorker struct {
	gen *rng.Rand
	n   int
}
