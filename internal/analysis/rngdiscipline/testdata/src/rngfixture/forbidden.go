package rngfixture

import (
	crand "crypto/rand" // want `import of "crypto/rand" is forbidden`
	mrand "math/rand"   // want `import of "math/rand" is forbidden`
)

// drainStdlibRand uses the forbidden imports so the fixture compiles.
func drainStdlibRand() (int, error) {
	b := make([]byte, 8)
	_, err := crand.Read(b)
	return mrand.Int(), err
}
