package rngdiscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/rngdiscipline"
)

func TestRngDiscipline(t *testing.T) {
	analysistest.Run(t, rngdiscipline.Analyzer, "rngfixture")
}
