// Package wirecli is the client side of the wirecompat fixture pair.
// Point mirrors wiresrv.PointJSON exactly; Verdict drifts from
// wiresrv.Resp in every way the analyzer distinguishes, and the Code*
// constants drift from wiresrv.ErrorCode in both directions.
package wirecli

// Point matches wiresrv.PointJSON field for field — no diagnostics.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Verdict drifts from wiresrv.Resp four ways: score's value shape
// narrowed to float32, note lost its omitempty, loc was renamed to
// where (one missing field + one extra), all reported on the type name.
type Verdict struct { // want `field "loc": present in serve, missing in client` `field "note": omitempty differs: client false vs serve true` `field "score": shape differs: client float32 vs serve float64` `field "where": present in client, missing in serve`
	Score float32 `json:"score"`
	Note  string  `json:"note"`
	Where Point   `json:"where"`
}

// CodeBad matches wiresrv.ErrBad; the missing-serve-code diagnostic for
// "gone" anchors here because it is the first Code* constant. CodeExtra
// matches nothing on the serve side.
const (
	CodeBad   = "bad"   // want `error code "gone" \(wiresrv\.ErrorCode\) has no client Code\* constant`
	CodeExtra = "extra" // want `client constant CodeExtra = "extra" matches no wiresrv\.ErrorCode value`
)
