// Package wiresrv is the serve side of the wirecompat fixture pair: a
// typed error-code set and two JSON response structs for wirecli to
// drift from.
package wiresrv

// ErrorCode mirrors serve.ErrorCode's shape: a named string with typed
// constants.
type ErrorCode string

const (
	ErrBad  ErrorCode = "bad"
	ErrGone ErrorCode = "gone"
)

type PointJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type Resp struct {
	Score float64   `json:"score"`
	Note  string    `json:"note,omitempty"`
	Loc   PointJSON `json:"loc"`
	debug string    // unexported: invisible on the wire
}

// keep the unexported field referenced so the fixture compiles clean.
func (r Resp) String() string { return r.debug }
