// Package wirecompat structurally compares the typed client's wire
// structs (repro/client, which deliberately imports no server package)
// against the server's JSON request/response structs, and the client's
// error-code string constants against serve.ErrorCode's values. The two
// sides are developed apart by design; this analyzer is the static
// complement to the marshal-and-compare golden tests, and it fires on
// the drift classes those tests can miss when a case is forgotten:
//
//   - a field present on one side and absent on the other (compared by
//     effective JSON name: the json tag's name, or the Go field name
//     when untagged; json:"-" fields are invisible on both sides)
//   - a field whose value SHAPE differs — shapes are canonical
//     recursive descriptions (basic kind, pointer, slice, map, nested
//     struct by sorted JSON name) so renames of Go types that keep the
//     same wire form stay legal
//   - omitempty present on one side only
//   - an error-code constant value present on one side's set and
//     missing from the other's
//
// The comparison is purely types-level (types.Struct tags via the
// loader), so the analyzer needs the run Context's Loader to pull in
// the server packages the client does not import; under the plain
// single-package runner it reports nothing.
//
// NewAnalyzer exists so tests can point the same comparison at fixture
// packages; the package-level Analyzer carries the real pair table.
package wirecompat

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Pair names one client type and the serve-side type it must mirror.
type Pair struct {
	ClientType string
	ServePath  string
	ServeType  string
}

// Codes configures the error-code set comparison.
type Codes struct {
	// ClientPrefix selects the client's code constants (untyped strings
	// named e.g. Code*).
	ClientPrefix string
	// ServePath/ServeType name the server's typed string constants
	// (serve.ErrorCode).
	ServePath string
	ServeType string
}

// Config is the full comparison table.
type Config struct {
	ClientPath string
	Pairs      []Pair
	Codes      *Codes
}

// DefaultConfig is the real client↔serve table.
var DefaultConfig = Config{
	ClientPath: "repro/client",
	Pairs: []Pair{
		{"Point", "repro/internal/serve", "PointJSON"},
		{"Deployment", "repro/internal/deploy", "Config"},
		{"TrainSpec", "repro/internal/serve", "TrainSpec"},
		{"DetectorSpec", "repro/internal/serve", "DetectorSpec"},
		{"TrainInfo", "repro/internal/serve", "TrainInfoJSON"},
		{"Detector", "repro/internal/serve", "DetectorJSON"},
		{"Verdict", "repro/internal/serve", "CheckResponse"},
		{"Item", "repro/internal/serve", "BatchItemJSON"},
		{"Correction", "repro/internal/serve", "CorrectResponse"},
		{"APIError", "repro/internal/serve", "APIError"},
	},
	Codes: &Codes{
		ClientPrefix: "Code",
		ServePath:    "repro/internal/serve",
		ServeType:    "ErrorCode",
	},
}

// Analyzer is the wirecompat check over the real packages.
var Analyzer = NewAnalyzer(DefaultConfig)

// NewAnalyzer builds a wirecompat analyzer for the given table.
func NewAnalyzer(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "wirecompat",
		Doc:  "client wire types and error codes must structurally match the server's JSON structs",
		Run:  func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

func run(pass *analysis.Pass, cfg Config) error {
	if pass.Pkg.Path() != cfg.ClientPath || pass.Ctx.Loader == nil {
		return nil
	}
	for _, pair := range cfg.Pairs {
		servePkg, err := pass.Ctx.Loader.Import(pair.ServePath)
		if err != nil {
			return fmt.Errorf("wirecompat: loading %s: %w", pair.ServePath, err)
		}
		clientObj := pass.Pkg.Scope().Lookup(pair.ClientType)
		if clientObj == nil {
			pass.Reportf(pass.Files[0].Pos(), "wire pair %s<->%s.%s: client type %s not found",
				pair.ClientType, servePkg.Name(), pair.ServeType, pair.ClientType)
			continue
		}
		serveObj := servePkg.Scope().Lookup(pair.ServeType)
		if serveObj == nil {
			pass.Reportf(clientObj.Pos(), "wire pair %s<->%s.%s: serve type %s not found in %s",
				pair.ClientType, servePkg.Name(), pair.ServeType, pair.ServeType, pair.ServePath)
			continue
		}
		cs, cok := clientObj.Type().Underlying().(*types.Struct)
		ss, sok := serveObj.Type().Underlying().(*types.Struct)
		if !cok || !sok {
			pass.Reportf(clientObj.Pos(), "wire pair %s<->%s.%s: both sides must be structs",
				pair.ClientType, servePkg.Name(), pair.ServeType)
			continue
		}
		label := fmt.Sprintf("%s<->%s.%s", pair.ClientType, servePkg.Name(), pair.ServeType)
		for _, diff := range compareStructs(cs, ss) {
			pass.Reportf(clientObj.Pos(), "wire mismatch %s: %s", label, diff)
		}
	}
	if cfg.Codes != nil {
		checkCodes(pass, cfg)
	}
	return nil
}

// field is one side's view of a wire field.
type field struct {
	shape     string
	omitempty bool
}

// compareStructs diffs two structs by effective JSON field name.
func compareStructs(client, serve *types.Struct) []string {
	cf := wireFields(client)
	sf := wireFields(serve)
	names := map[string]bool{}
	for n := range cf {
		names[n] = true
	}
	for n := range sf {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	var diffs []string
	for _, n := range ordered {
		c, inC := cf[n]
		s, inS := sf[n]
		switch {
		case !inS:
			diffs = append(diffs, fmt.Sprintf("field %q: present in client, missing in serve", n))
		case !inC:
			diffs = append(diffs, fmt.Sprintf("field %q: present in serve, missing in client", n))
		case c.shape != s.shape:
			diffs = append(diffs, fmt.Sprintf("field %q: shape differs: client %s vs serve %s", n, c.shape, s.shape))
		case c.omitempty != s.omitempty:
			diffs = append(diffs, fmt.Sprintf("field %q: omitempty differs: client %v vs serve %v", n, c.omitempty, s.omitempty))
		}
	}
	return diffs
}

// wireFields maps a struct's effective JSON names to field shapes,
// skipping unexported and json:"-" fields.
func wireFields(st *types.Struct) map[string]field {
	out := map[string]field{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		name, omitempty, skip := jsonTag(st.Tag(i), f.Name())
		if skip {
			continue
		}
		out[name] = field{shape: shape(f.Type(), map[types.Type]bool{}), omitempty: omitempty}
	}
	return out
}

func jsonTag(tag, fieldName string) (name string, omitempty, skip bool) {
	jt := reflect.StructTag(tag).Get("json")
	if jt == "-" {
		return "", false, true
	}
	parts := strings.Split(jt, ",")
	name = parts[0]
	if name == "" {
		name = fieldName
	}
	for _, opt := range parts[1:] {
		if opt == "omitempty" {
			omitempty = true
		}
	}
	return name, omitempty, false
}

// shape renders a type's canonical wire form: named types reduce to
// their underlying structure, so either side may rename Go types freely
// as long as the JSON stays identical.
func shape(t types.Type, seen map[types.Type]bool) string {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return types.Typ[u.Kind()].Name()
	case *types.Pointer:
		return "*" + shape(u.Elem(), seen)
	case *types.Slice:
		return "[]" + shape(u.Elem(), seen)
	case *types.Array:
		return fmt.Sprintf("[%d]%s", u.Len(), shape(u.Elem(), seen))
	case *types.Map:
		return "map[" + shape(u.Key(), seen) + "]" + shape(u.Elem(), seen)
	case *types.Interface:
		return "any"
	case *types.Struct:
		if seen[t] {
			return "<cycle>"
		}
		seen[t] = true
		type entry struct {
			name string
			f    field
		}
		var entries []entry
		for n, f := range wireFieldsSeen(u, seen) {
			entries = append(entries, entry{n, f})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
		var parts []string
		for _, e := range entries {
			opt := ""
			if e.f.omitempty {
				opt = "?"
			}
			parts = append(parts, e.name+opt+":"+e.f.shape)
		}
		return "{" + strings.Join(parts, ",") + "}"
	default:
		return u.String()
	}
}

func wireFieldsSeen(st *types.Struct, seen map[types.Type]bool) map[string]field {
	out := map[string]field{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() {
			continue
		}
		name, omitempty, skip := jsonTag(st.Tag(i), f.Name())
		if skip {
			continue
		}
		out[name] = field{shape: shape(f.Type(), seen), omitempty: omitempty}
	}
	return out
}

// checkCodes compares the client's code-constant VALUES against the
// serve ErrorCode constant values, both directions.
func checkCodes(pass *analysis.Pass, cfg Config) {
	servePkg, err := pass.Ctx.Loader.Import(cfg.Codes.ServePath)
	if err != nil {
		pass.Reportf(pass.Files[0].Pos(), "wirecompat: loading %s: %v", cfg.Codes.ServePath, err)
		return
	}
	serveVals := map[string]bool{}
	scope := servePkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if !analysis.IsNamedType(c.Type(), cfg.Codes.ServePath, cfg.Codes.ServeType) {
			continue
		}
		serveVals[constString(c)] = true
	}

	clientVals := map[string]types.Object{}
	var anchor types.Object
	cscope := pass.Pkg.Scope()
	for _, name := range cscope.Names() {
		if !strings.HasPrefix(name, cfg.Codes.ClientPrefix) {
			continue
		}
		c, ok := cscope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		b, ok := c.Type().Underlying().(*types.Basic)
		if !ok || b.Info()&types.IsString == 0 {
			continue
		}
		clientVals[constString(c)] = c
		if anchor == nil || c.Pos() < anchor.Pos() {
			anchor = c
		}
	}

	for _, v := range sortedKeys(serveVals) {
		if _, ok := clientVals[v]; !ok {
			pos := pass.Files[0].Pos()
			if anchor != nil {
				pos = anchor.Pos()
			}
			pass.Reportf(pos, "error code %q (%s.%s) has no client %s* constant",
				v, servePkg.Name(), cfg.Codes.ServeType, cfg.Codes.ClientPrefix)
		}
	}
	for v, obj := range clientVals {
		if !serveVals[v] {
			pass.Reportf(obj.Pos(), "client constant %s = %q matches no %s.%s value",
				obj.Name(), v, servePkg.Name(), cfg.Codes.ServeType)
		}
	}
}

func constString(c *types.Const) string {
	s := c.Val().String()
	return strings.Trim(s, `"`)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
