package wirecompat_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wirecompat"
)

// fixtureAnalyzer points the comparison at the fixture pair instead of
// the real client/serve table.
var fixtureAnalyzer = wirecompat.NewAnalyzer(wirecompat.Config{
	ClientPath: "wirecli",
	Pairs: []wirecompat.Pair{
		{ClientType: "Point", ServePath: "wiresrv", ServeType: "PointJSON"},
		{ClientType: "Verdict", ServePath: "wiresrv", ServeType: "Resp"},
	},
	Codes: &wirecompat.Codes{
		ClientPrefix: "Code",
		ServePath:    "wiresrv",
		ServeType:    "ErrorCode",
	},
})

func TestWireCompat(t *testing.T) {
	analysistest.RunSuite(t, []*analysis.Analyzer{fixtureAnalyzer}, []string{"wiresrv"}, "wirecli")
}

// TestRealClientClean runs the production pair table over the real
// repro/client package: any diagnostic means the typed client has
// drifted from the server's wire structs.
func TestRealClientClean(t *testing.T) {
	root := moduleRoot(t)
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(root, "client"), "repro/client")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunPass(pkg, wirecompat.Analyzer, analysis.NewContext(loader))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected wire drift: %s", d)
	}
}

// TestRealClientTagMutation is the acceptance check for the analyzer
// itself: a single json-tag rename in a copy of client/types.go must
// produce diagnostics. client/types.go is deliberately self-contained
// (no imports), so the copy type-checks standalone.
func TestRealClientTagMutation(t *testing.T) {
	root := moduleRoot(t)
	src, err := os.ReadFile(filepath.Join(root, "client", "types.go"))
	if err != nil {
		t.Fatal(err)
	}
	mutated := strings.Replace(string(src), "`json:\"score\"`", "`json:\"points\"`", 1)
	if mutated == string(src) {
		t.Fatal(`client/types.go no longer contains a json:"score" tag; pick a new mutation target`)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "types.go"), []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "clientmutated")
	if err != nil {
		t.Fatal(err)
	}
	cfg := wirecompat.DefaultConfig
	cfg.ClientPath = "clientmutated"
	diags, err := analysis.RunPass(pkg, wirecompat.NewAnalyzer(cfg), analysis.NewContext(loader))
	if err != nil {
		t.Fatal(err)
	}
	var sawMissing, sawExtra bool
	for _, d := range diags {
		if strings.Contains(d.Message, `field "score": present in serve, missing in client`) {
			sawMissing = true
		}
		if strings.Contains(d.Message, `field "points": present in client, missing in serve`) {
			sawExtra = true
		}
	}
	if !sawMissing || !sawExtra {
		t.Errorf("tag rename not detected (missing=%v extra=%v); diagnostics: %v", sawMissing, sawExtra, diags)
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test directory")
		}
		dir = parent
	}
}
