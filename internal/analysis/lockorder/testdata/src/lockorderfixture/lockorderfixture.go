// Package lockorderfixture exercises the lockorder analyzer: direct
// and call-mediated re-acquisition of a held mutex fire, opposite-order
// acquisitions across functions close a class cycle reported at the
// first witness, read-read recursion and go-spawned reversals do not.
package lockorderfixture

import "sync"

type alpha struct {
	mu   sync.Mutex
	peer *beta
}

type beta struct {
	mu   sync.Mutex
	peer *alpha
}

// forward acquires beta's lock while holding alpha's; backward does the
// opposite. Neither is wrong alone — the cycle is a whole-program fact,
// reported once at the first witness edge.
func (a *alpha) forward() {
	a.mu.Lock()
	a.peer.mu.Lock() // want `lock-order cycle: mu \(lockorderfixture\.go:\d+\) -> mu \(lockorderfixture\.go:\d+\)`
	a.peer.mu.Unlock()
	a.mu.Unlock()
}

func (b *beta) backward() {
	b.mu.Lock()
	b.peer.mu.Lock()
	b.peer.mu.Unlock()
	b.mu.Unlock()
}

type counter struct {
	mu sync.Mutex
	n  int
}

// relock deadlocks immediately: sync.Mutex is not reentrant.
func (c *counter) relock() {
	c.mu.Lock()
	c.mu.Lock() // want `guaranteed self-deadlock`
	c.n++
	c.mu.Unlock()
	c.mu.Unlock()
}

// bump locks internally; doubleBump calls it with the lock already
// held — the helper loophole the call-summary propagation closes.
func (c *counter) bump() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) doubleBump() {
	c.mu.Lock()
	c.bump() // want `call to bump acquires c\.mu, which is already held here: self-deadlock`
	c.mu.Unlock()
}

type table struct {
	mu sync.RWMutex
	m  map[int]int
}

// readMore re-read-locks under a read lock: discouraged, but not a
// deadlock by itself — not flagged.
func (t *table) readTwice() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.readMore()
}

func (t *table) readMore() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.m)
}

// upgrade write-locks under its own read lock: writers wait for
// readers, so this deadlocks.
func (t *table) upgrade() {
	t.mu.RLock()
	t.mu.Lock() // want `guaranteed self-deadlock`
	t.m[0] = 1
	t.mu.Unlock()
	t.mu.RUnlock()
}

type gamma struct {
	mu sync.Mutex
	d  *delta
}

type delta struct {
	mu sync.Mutex
	g  *gamma
}

// forward's edge comes from the callee's summary (lockSelf acquires
// delta.mu during the call), not from any syntactic Lock here.
func (g *gamma) forward() {
	g.mu.Lock()
	g.d.lockSelf()
	g.mu.Unlock()
}

func (d *delta) lockSelf() {
	d.mu.Lock()
	d.mu.Unlock()
}

// spawn acquires gamma.mu on a NEW goroutine while holding delta.mu:
// the spawned work imposes no ordering on this caller, so no cycle
// closes and nothing fires.
func (d *delta) spawn() {
	d.mu.Lock()
	go d.g.lockMine()
	d.mu.Unlock()
}

func (g *gamma) lockMine() {
	g.mu.Lock()
	g.mu.Unlock()
}

type eps struct {
	mu sync.Mutex
	z  *zeta
}

type zeta struct {
	mu sync.Mutex
	e  *eps
}

// viaClosure's ordering pair lives inside a function literal — closure
// bodies contribute their own pairs even though they are not folded
// into the enclosing function's summary.
func (e *eps) viaClosure() {
	f := func() {
		e.mu.Lock()
		e.z.mu.Lock() // want `lock-order cycle: mu \(lockorderfixture\.go:\d+\) -> mu \(lockorderfixture\.go:\d+\)`
		e.z.mu.Unlock()
		e.mu.Unlock()
	}
	f()
}

func (z *zeta) zBackward() {
	z.mu.Lock()
	z.e.mu.Lock()
	z.e.mu.Unlock()
	z.mu.Unlock()
}
