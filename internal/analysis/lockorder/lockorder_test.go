package lockorder_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockorder"
)

// RunSuite (not Run) so the Finish hook's whole-program cycle detection
// executes.
func TestLockOrder(t *testing.T) {
	analysistest.RunSuite(t, []*analysis.Analyzer{lockorder.Analyzer}, nil, "lockorderfixture")
}
