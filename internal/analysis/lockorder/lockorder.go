// Package lockorder detects deadlock hazards across the whole program:
//
//   - SELF-DEADLOCK: re-acquiring a sync.Mutex (or write-locking an
//     RWMutex) that the current execution already holds — directly, or
//     through a static call chain (f holds p.mu and calls g, and g
//     locks p.mu). RLock-after-RLock is not flagged: recursive read
//     locks are discouraged but do not deadlock by themselves.
//   - LOCK-ORDER CYCLES: each simulation records "acquired B while
//     holding A" pairs between lock CLASSES (the mutex field or
//     variable declaration — every poolEntry.mu is one class no matter
//     which entry), call summaries propagate acquisitions up the static
//     call graph with receiver/parameter remapping, and the Finish hook
//     reports every cycle in the resulting global class digraph with
//     the witness positions of each edge.
//
// The analyzer reuses the locksim engine guardedby runs on, so its
// notion of "held" matches the rest of the suite: //lad:requires
// functions are simulated with their declared precondition held (which
// also records the ordering edge required-lock → acquired-lock at
// their acquisition sites), deferred unlocks keep the lock to function
// exit, and go statements transfer nothing — a spawned callee's
// acquisitions belong to its own goroutine, not the spawning caller's
// summary.
//
// Function-literal bodies are simulated for their own pairs (a closure
// that locks two mutexes contributes edges) but are not folded into
// the enclosing function's summary: whether and when a closure runs is
// not knowable statically, so attributing its acquisitions to every
// caller of the encloser would manufacture false edges.
//
// Like every interprocedural check in the suite, dynamic dispatch is
// not chased, and summary remapping is exact only for mutexes reached
// as <receiver-or-parameter>.<field> — deeper chains still contribute
// their class edges but are not matched against held keys.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/locksim"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name:   "lockorder",
	Doc:    "mutex acquisitions must be self-consistent: no re-acquisition of a held lock, no global lock-order cycles",
	Run:    run,
	Finish: finish,
}

// AcqOut is one acquisition a function's execution performs, as seen by
// its callers.
type AcqOut struct {
	// Obj is the lock class (mutex field or variable object).
	Obj types.Object
	// Read marks RLock.
	Read bool
	// Base says how callers remap the instance: -1 the receiver, >= 0
	// that parameter index (the mutex is exactly base.field), -2 not
	// remappable (only the class edge is usable).
	Base int
	// Field is the mutex field when Base >= -1.
	Field *types.Var
	// Pos is the original acquisition site (witness).
	Pos token.Pos
}

// global is the run-wide lock-order state, kept in Context.State.
type global struct {
	fset      *token.FileSet
	summaries map[*types.Func][]AcqOut
	nodes     []types.Object
	seen      map[types.Object]bool
	edges     map[types.Object]map[types.Object]token.Pos
}

func state(ctx *analysis.Context) *global {
	return ctx.State("lockorder", func() any {
		return &global{
			summaries: make(map[*types.Func][]AcqOut),
			seen:      make(map[types.Object]bool),
			edges:     make(map[types.Object]map[types.Object]token.Pos),
		}
	}).(*global)
}

func (g *global) edge(from, to types.Object, pos token.Pos) {
	for _, o := range []types.Object{from, to} {
		if !g.seen[o] {
			g.seen[o] = true
			g.nodes = append(g.nodes, o)
		}
	}
	m := g.edges[from]
	if m == nil {
		m = make(map[types.Object]token.Pos)
		g.edges[from] = m
	}
	if _, ok := m[to]; !ok {
		m[to] = pos
	}
}

// acqRec is an acquisition recorded during one function's simulation.
type acqRec struct {
	out AcqOut
}

// callRec is a call site recorded for the post-fixpoint phases: the
// held snapshot, and the syntactic receiver/arguments for remapping.
type callRec struct {
	callee   *types.Func
	pos      token.Pos
	held     locksim.State
	recvStr  string
	recvBase int
	argStrs  []string
	argBases []int
	diagOnly bool // inside a function literal: check, don't summarize
}

type funcRec struct {
	fn    *types.Func
	acqs  []acqRec
	calls []callRec
}

func run(pass *analysis.Pass) error {
	st := state(pass.Ctx)
	st.fset = pass.Fset

	var recs []*funcRec
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			entry := locksim.State{}
			if req, has, err := locksim.ResolveRequires(pass, fd); has && err == nil {
				entry[req.Key()] = locksim.Lock{Obj: req.Field}
			}
			rec := &funcRec{fn: fn}
			c := &collector{pass: pass, st: st, rec: rec, frame: frameOf(pass, fn)}
			c.simulate(fd.Body, entry, false)
			recs = append(recs, rec)
		}
	}

	// Fixpoint: fold statically-called callees' summaries into each
	// function's summary, remapped into its frame. Cross-package callees
	// already have summaries (dependency order).
	for _, rec := range recs {
		st.summaries[rec.fn] = ownSummary(rec)
	}
	for changed := true; changed; {
		changed = false
		for _, rec := range recs {
			sum := st.summaries[rec.fn]
			have := make(map[string]bool, len(sum))
			for _, a := range sum {
				have[sumKey(a)] = true
			}
			for _, cr := range rec.calls {
				if cr.diagOnly {
					continue
				}
				for _, a := range st.summaries[cr.callee] {
					r := remap(a, cr)
					if !have[sumKey(r)] {
						have[sumKey(r)] = true
						sum = append(sum, r)
						changed = true
					}
				}
			}
			st.summaries[rec.fn] = sum
		}
	}

	// Diagnostics: every call made while holding locks contributes the
	// callee's (transitive) acquisitions as ordering edges, and a
	// remapped acquisition of an already-held key is a self-deadlock.
	for _, rec := range recs {
		for _, cr := range rec.calls {
			if len(cr.held) == 0 {
				continue
			}
			reported := false
			for _, a := range st.summaries[cr.callee] {
				for hkey, hl := range cr.held {
					if hl.Obj != nil && a.Obj != nil && hl.Obj != a.Obj {
						st.edge(hl.Obj, a.Obj, cr.pos)
					}
					if reported {
						continue
					}
					if key, ok := remapKey(a, cr); ok && key == hkey && !(a.Read && hl.Read) {
						pass.Reportf(cr.pos, "call to %s acquires %s, which is already held here: self-deadlock (acquired at %s)",
							cr.callee.Name(), key, st.pos(a.Pos))
						reported = true
					}
				}
			}
		}
	}
	return nil
}

// ownSummary converts a function's direct acquisitions to its base
// summary.
func ownSummary(rec *funcRec) []AcqOut {
	have := map[string]bool{}
	var out []AcqOut
	for _, a := range rec.acqs {
		if a.out.Obj == nil {
			continue
		}
		if k := sumKey(a.out); !have[k] {
			have[k] = true
			out = append(out, a.out)
		}
	}
	return out
}

func sumKey(a AcqOut) string {
	return fmt.Sprintf("%p/%v/%d", a.Obj, a.Read, a.Base)
}

// remap translates a callee-frame acquisition into the caller's frame
// at one call site.
func remap(a AcqOut, cr callRec) AcqOut {
	out := a
	switch {
	case a.Base == -1:
		out.Base = cr.recvBase
	case a.Base >= 0 && a.Base < len(cr.argBases):
		out.Base = cr.argBases[a.Base]
	default:
		out.Base = -2
	}
	return out
}

// remapKey computes the held-state key a callee acquisition corresponds
// to in the caller, when the acquisition is syntactically remappable.
func remapKey(a AcqOut, cr callRec) (string, bool) {
	if a.Field == nil {
		// Package-level mutex: the key is the variable expression itself,
		// stable across functions in the same package.
		if a.Obj != nil && a.Obj.Pkg() != nil && a.Obj.Parent() == a.Obj.Pkg().Scope() {
			return a.Obj.Name(), true
		}
		return "", false
	}
	switch {
	case a.Base == -1 && cr.recvStr != "":
		return cr.recvStr + "." + a.Field.Name(), true
	case a.Base >= 0 && a.Base < len(cr.argStrs):
		return cr.argStrs[a.Base] + "." + a.Field.Name(), true
	}
	return "", false
}

func (g *global) pos(p token.Pos) string {
	position := g.fset.Position(p)
	return fmt.Sprintf("%s:%d", filepath.Base(position.Filename), position.Line)
}

// collector drives one function's simulation.
type collector struct {
	pass  *analysis.Pass
	st    *global
	rec   *funcRec
	frame map[types.Object]int // receiver → -1, params → index
}

func frameOf(pass *analysis.Pass, fn *types.Func) map[types.Object]int {
	frame := map[types.Object]int{}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		frame[recv] = -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		frame[sig.Params().At(i)] = i
	}
	return frame
}

func (c *collector) simulate(body *ast.BlockStmt, entry locksim.State, diagOnly bool) {
	s := &locksim.Sim{
		Pass: c.pass,
		Hooks: locksim.Hooks{
			OnAcquire: func(key string, l locksim.Lock, call *ast.CallExpr, held locksim.State) {
				c.acquire(key, l, call, held, diagOnly)
			},
			OnCall: func(call *ast.CallExpr, held locksim.State) {
				c.call(call, held, diagOnly)
			},
			OnGoCall: func(call *ast.CallExpr) {
				// Spawned work acquires on its own goroutine: no edges, no
				// summary contribution. The spawned function's own record
				// covers its internal pairs.
			},
			OnFuncLit: func(lit *ast.FuncLit, entry locksim.State) {
				c.simulate(lit.Body, entry, true)
			},
		},
	}
	s.Run(body, entry)
}

func (c *collector) acquire(key string, l locksim.Lock, call *ast.CallExpr, held locksim.State, diagOnly bool) {
	for hkey, hl := range held {
		if hkey == key {
			if !(l.Read && hl.Read) {
				c.pass.Reportf(call.Pos(), "acquiring %s while already holding it: guaranteed self-deadlock (sync mutexes are not reentrant)", key)
			}
			continue
		}
		if hl.Obj != nil && l.Obj != nil && hl.Obj != l.Obj {
			c.st.edge(hl.Obj, l.Obj, call.Pos())
		}
	}
	if diagOnly || l.Obj == nil {
		return
	}
	base, field := c.acqBase(call)
	c.rec.acqs = append(c.rec.acqs, acqRec{out: AcqOut{
		Obj:   l.Obj,
		Read:  l.Read,
		Base:  base,
		Field: field,
		Pos:   call.Pos(),
	}})
}

// acqBase classifies the mutex expression of a lock call: exactly
// <receiver-or-param>.<field> is remappable; anything else contributes
// class edges only.
func (c *collector) acqBase(call *ast.CallExpr) (int, *types.Var) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return -2, nil
	}
	mu, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return -2, nil
	}
	baseID, ok := ast.Unparen(mu.X).(*ast.Ident)
	if !ok {
		return -2, nil
	}
	idx, ok := c.frame[c.pass.Info.Uses[baseID]]
	if !ok {
		return -2, nil
	}
	field, _ := c.pass.Info.Uses[mu.Sel].(*types.Var)
	if field == nil {
		return -2, nil
	}
	return idx, field
}

func (c *collector) call(call *ast.CallExpr, held locksim.State, diagOnly bool) {
	fn, ok := analysis.Callee(c.pass.Info, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	cr := callRec{
		callee:   fn,
		pos:      call.Pos(),
		held:     held.Clone(),
		recvBase: -2,
		diagOnly: diagOnly,
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isSel := c.pass.Info.Selections[sel]; isSel {
			cr.recvStr = analysis.ExprString(c.pass.Fset, sel.X)
			cr.recvBase = c.frameIndex(sel.X)
		}
	}
	for _, arg := range call.Args {
		cr.argStrs = append(cr.argStrs, analysis.ExprString(c.pass.Fset, arg))
		cr.argBases = append(cr.argBases, c.frameIndex(arg))
	}
	c.rec.calls = append(c.rec.calls, cr)
}

func (c *collector) frameIndex(e ast.Expr) int {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return -2
	}
	if idx, ok := c.frame[c.pass.Info.Uses[id]]; ok {
		return idx
	}
	return -2
}

// finish reports every cycle in the global lock-class digraph: each
// strongly connected component of two or more classes (or a self-loop —
// two instances of one class held together) is one diagnostic carrying
// the witness position of every internal edge.
func finish(ctx *analysis.Context) []analysis.Diagnostic {
	st := state(ctx)
	if st.fset == nil {
		return nil
	}
	sccs := tarjan(st)
	var diags []analysis.Diagnostic
	for _, scc := range sccs {
		inSCC := map[types.Object]bool{}
		for _, o := range scc {
			inSCC[o] = true
		}
		type witness struct {
			from, to types.Object
			pos      token.Pos
		}
		var ws []witness
		for _, from := range scc {
			for _, to := range scc {
				if pos, ok := st.edges[from][to]; ok {
					ws = append(ws, witness{from, to, pos})
				}
			}
		}
		if len(scc) == 1 && len(ws) == 0 {
			continue // single node, no self-loop: not a cycle
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i].pos < ws[j].pos })
		var parts []string
		for _, w := range ws {
			parts = append(parts, fmt.Sprintf("%s -> %s at %s", st.describe(w.from), st.describe(w.to), st.pos(w.pos)))
		}
		position := st.fset.Position(ws[0].pos)
		if ctx.SuppressedAt("lockorder", position) {
			continue
		}
		diags = append(diags, analysis.Diagnostic{
			Pos:      position,
			Analyzer: "lockorder",
			Message:  fmt.Sprintf("lock-order cycle: %s; impose one global acquisition order", strings.Join(parts, "; ")),
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		return diags[i].Pos.Line < diags[j].Pos.Line
	})
	return diags
}

// describe renders a lock class as its declaration: "mu (pool.go:12)".
func (g *global) describe(o types.Object) string {
	return fmt.Sprintf("%s (%s)", o.Name(), g.pos(o.Pos()))
}

// tarjan returns the strongly connected components of the class graph
// that can participate in cycles: components of size >= 2, plus single
// nodes with a self-edge. Deterministic: nodes are visited in first-seen
// order, which run() populates in source order per package.
func tarjan(g *global) [][]types.Object {
	index := map[types.Object]int{}
	low := map[types.Object]int{}
	onStack := map[types.Object]bool{}
	var stack []types.Object
	var sccs [][]types.Object
	next := 0

	var strongconnect func(v types.Object)
	strongconnect = func(v types.Object) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		// Deterministic neighbor order.
		var targets []types.Object
		for to := range g.edges[v] {
			targets = append(targets, to)
		}
		sort.Slice(targets, func(i, j int) bool { return targets[i].Pos() < targets[j].Pos() })
		for _, w := range targets {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []types.Object
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) >= 2 {
				sort.Slice(scc, func(i, j int) bool { return scc[i].Pos() < scc[j].Pos() })
				sccs = append(sccs, scc)
			} else if _, self := g.edges[scc[0]][scc[0]]; self {
				sccs = append(sccs, scc)
			}
		}
	}
	for _, v := range g.nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}
