// Package analysis is a minimal, stdlib-only reimplementation of the
// golang.org/x/tools/go/analysis surface that cmd/ladvet's project
// analyzers are written against. The repository is dependency-free by
// policy (see go.mod: no requirements), so rather than vendoring
// x/tools this package provides the three pieces the suite needs:
//
//   - Analyzer/Pass/Diagnostic: the familiar shape — an analyzer gets
//     one package's syntax plus full type information and reports
//     position-anchored diagnostics.
//   - Loader: a module-aware package loader (loader.go) that parses the
//     repository's packages and type-checks them against the standard
//     library's compiled export data (via `go list -export`), entirely
//     offline.
//   - Suppression: staticcheck-style `//lint:ignore <checks> <reason>`
//     line comments, honored at Report time, so every accepted finding
//     in the tree is silenced explicitly AND carries its justification
//     in the source.
//
// The subdirectory analysistest mirrors x/tools' analysistest: fixture
// packages under testdata/src annotate expected diagnostics with
// `// want "regexp"` comments, which is how every ladvet analyzer
// proves its diagnostic actually fires.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check: a name (used in diagnostics and in
// //lint:ignore directives), a short doc string, and the Run function.
// Finish, when set, runs once after every package of the run has been
// analyzed — the hook for whole-program conclusions (lockorder's global
// cycle detection) that no single package can reach. Finish hooks must
// route would-be diagnostics through Context.SuppressedAt themselves.
type Analyzer struct {
	Name   string
	Doc    string
	Run    func(*Pass) error
	Finish func(*Context) []Diagnostic
}

// Diagnostic is one reported finding, already resolved to a concrete
// file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package, plus the run-wide
// Context through which facts flow and suppressions are audited.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Ctx      *Context

	diags []Diagnostic
}

// Reportf records a diagnostic at pos unless a //lint:ignore directive
// on the same line (or the line directly above) names this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Ctx.SuppressedAt(p.Analyzer.Name, position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// SuppressedAt reports whether a diagnostic of this analyzer at pos
// would be suppressed. Analyzers computing silent facts (noalloc's
// allocation summaries) use it so a reasoned //lint:ignore sanctions a
// construct for fact purposes exactly as it silences a diagnostic.
func (p *Pass) SuppressedAt(pos token.Pos) bool {
	return p.Ctx.SuppressedAt(p.Analyzer.Name, p.Fset.Position(pos))
}

// ExportObjectFact attaches fact to obj in the run's shared fact store.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.Ctx.Facts.Export(obj, fact)
}

// ImportObjectFact copies obj's fact of ptr's concrete type into ptr,
// reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	return p.Ctx.Facts.Import(obj, ptr)
}

// Run executes one analyzer over one loaded package with a fresh
// single-package context and returns its surviving (non-suppressed)
// diagnostics sorted by position. Interprocedural analyzers need the
// shared-context entry point RunPass instead.
func Run(pkg *Package, a *Analyzer) ([]Diagnostic, error) {
	return RunPass(pkg, a, NewContext(nil))
}

// RunPass executes one analyzer over one loaded package under the given
// run context, so facts exported by earlier passes (and packages) are
// visible and suppression usage accumulates run-wide.
func RunPass(pkg *Package, a *Analyzer, ctx *Context) ([]Diagnostic, error) {
	ctx.registerFiles(pkg.Fset, pkg.Files)
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Ctx:      ctx,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.ImportPath, err)
	}
	sort.Slice(pass.diags, func(i, j int) bool {
		di, dj := pass.diags[i], pass.diags[j]
		if di.Pos.Filename != dj.Pos.Filename {
			return di.Pos.Filename < dj.Pos.Filename
		}
		if di.Pos.Line != dj.Pos.Line {
			return di.Pos.Line < dj.Pos.Line
		}
		return di.Pos.Column < dj.Pos.Column
	})
	return pass.diags, nil
}

// FuncAnnotated reports whether the function's doc comment carries the
// given lad: marker as a standalone directive line (e.g. "//lad:noalloc"
// or "//lad:ctx"). Markers take no arguments; anything after the marker
// on the same line is commentary.
func FuncAnnotated(decl *ast.FuncDecl, marker string) bool {
	return commentHasDirective(decl.Doc, "lad:"+marker)
}

// FuncDirective returns the argument of a "//lad:<marker> <arg>" line
// in a function's doc comment, and whether the directive is present at
// all. An argument-less directive returns ("", true).
func FuncDirective(decl *ast.FuncDecl, marker string) (string, bool) {
	return directiveArg(decl.Doc, "lad:"+marker)
}

// FieldDirective returns the argument of a "//lad:<marker> <arg>" line
// in a struct field's doc (or trailing line) comment, and whether the
// directive is present at all. An argument-less directive returns ("",
// true).
func FieldDirective(field *ast.Field, marker string) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if arg, ok := directiveArg(cg, "lad:"+marker); ok {
			return arg, true
		}
	}
	return "", false
}

func commentHasDirective(cg *ast.CommentGroup, directive string) bool {
	_, ok := directiveArg(cg, directive)
	return ok
}

func directiveArg(cg *ast.CommentGroup, directive string) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, "//"+directive)
		if !ok {
			continue
		}
		if rest == "" {
			return "", true
		}
		// Require a separator so lad:ctx does not match lad:ctxfoo.
		if rest[0] == ' ' || rest[0] == '\t' {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// IsNamedType reports whether t (after stripping pointers) is the named
// type path.name.
func IsNamedType(t types.Type, path, name string) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name {
		return false
	}
	if obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == path
}
