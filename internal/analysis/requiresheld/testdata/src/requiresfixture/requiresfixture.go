// Package requiresfixture exercises the requiresheld analyzer:
// unprotected calls to //lad:requires functions fire, lock-dominated
// calls and helper-to-helper chains do not, and malformed annotations
// are diagnosed at the function.
package requiresfixture

import "sync"

type pool struct {
	mu sync.Mutex
	n  int
}

// bumpLocked declares its precondition on the receiver's mutex.
//
//lad:requires mu
func (p *pool) bumpLocked() { p.n++ }

// purgeLocked chains to another requires-annotated helper: its own
// entry state satisfies the callee's precondition.
//
//lad:requires mu
func (p *pool) purgeLocked() {
	p.bumpLocked()
}

// drain declares the precondition on a parameter instead.
//
//lad:requires s.mu
func drain(s *pool) { s.n = 0 }

// Bump holds the lock across the helper call.
func (p *pool) Bump() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.bumpLocked()
	drain(p)
}

// Race calls the helpers with nothing held.
func (p *pool) Race() {
	p.bumpLocked() // want `call to bumpLocked \(//lad:requires p\.mu\) without holding p\.mu`
	drain(p)       // want `call to drain \(//lad:requires s\.mu\) without holding p\.mu`
}

// Early releases the lock before the helper call.
func (p *pool) Early() {
	p.mu.Lock()
	p.n = 1
	p.mu.Unlock()
	p.bumpLocked() // want `without holding p\.mu`
}

// closures run later: a goroutine body starts with nothing held, while
// a deferred closure inherits the current (defer-unlock idiom) state.
func (p *pool) Closures() {
	p.mu.Lock()
	defer func() {
		p.bumpLocked()
		p.mu.Unlock()
	}()
	go func() {
		p.bumpLocked() // want `without holding p\.mu`
	}()
}

// legacyLocked keeps the unchecked naming convention: body skipped.
func (p *pool) legacyLocked() {
	p.bumpLocked()
}

// badField names a mutex field that does not exist.
//
//lad:requires zz
func (p *pool) badField() {} // want `//lad:requires zz: p has no sync.Mutex/RWMutex field "zz"`

// badBase names a base that is neither receiver nor parameter.
//
//lad:requires q.mu
func badBase(p *pool) {} // want `no receiver or parameter named "q"`

// noReceiver uses the bare form without a receiver to hang it off.
//
//lad:requires mu
func noReceiver() {} // want `function has no receiver`
