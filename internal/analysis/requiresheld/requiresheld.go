// Package requiresheld checks declared lock preconditions. A function
// annotated
//
//	//lad:requires mu
//	//lad:requires s.mu
//
// declares that it must only be called with the named mutex held — "mu"
// resolves to a sync.Mutex/RWMutex field of the receiver, "s.mu" to a
// field of the receiver or parameter named s. The analyzer:
//
//   - validates the annotation (the named base and mutex field must
//     exist) and exports a RequiresFact on the function, visible to
//     callers in other packages (the driver analyzes packages in
//     dependency order) and to the lockorder analyzer;
//   - simulates lock state through every function body (the shared
//     locksim engine) and reports any call to a requires-annotated
//     function at a point where the caller does not provably hold the
//     callee's mutex, remapped to the caller's own expression for it
//     (calling (*pool).purgeLocked as p.entries[k].purgeLocked requires
//     p.entries[k].mu);
//   - seeds annotated functions' own simulations with their declared
//     precondition, so helper-calls-helper chains check out.
//
// The annotation upgrades the repository's "*Locked suffix means caller
// holds the lock" naming convention into a checked contract: guardedby
// simulates annotated bodies instead of skipping them, and this
// analyzer checks every call site. Un-annotated *Locked functions keep
// the legacy behavior (skipped bodies, unchecked call sites).
//
// Dynamically dispatched calls (interface methods, func values) cannot
// be checked and are skipped, as are method-expression invocations
// whose receiver is not syntactic.
package requiresheld

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/locksim"
)

// Analyzer is the requiresheld check.
var Analyzer = &analysis.Analyzer{
	Name: "requiresheld",
	Doc:  "functions annotated //lad:requires <mu> must be called with that mutex held",
	Run:  run,
}

// RequiresFact is the exported form of a //lad:requires annotation.
type RequiresFact struct {
	// BaseIndex is the parameter carrying the mutex, -1 for the receiver.
	BaseIndex int
	// BaseName is the base's name in the callee's own scope (messages).
	BaseName string
	// Field is the mutex field object — the lock class.
	Field *types.Var
}

func (*RequiresFact) AFact() {}

func run(pass *analysis.Pass) error {
	// Phase 1: validate and export every annotation in the package, so
	// in-package forward calls resolve during phase 2.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			req, has, err := locksim.ResolveRequires(pass, fd)
			if !has {
				continue
			}
			if err != nil {
				pass.Reportf(fd.Pos(), "%v", err)
				continue
			}
			if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				pass.ExportObjectFact(fn, &RequiresFact{
					BaseIndex: req.BaseIndex,
					BaseName:  req.BaseName,
					Field:     req.Field,
				})
			}
		}
	}

	// Phase 2: simulate every body and check call sites.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			entry := locksim.State{}
			req, has, err := locksim.ResolveRequires(pass, fd)
			switch {
			case has && err == nil:
				entry[req.Key()] = locksim.Lock{Obj: req.Field}
			case has:
				continue // malformed: reported in phase 1
			case strings.HasSuffix(fd.Name.Name, "Locked"):
				continue // legacy convention: entry state unknown
			}
			c := &checker{pass: pass}
			c.simulate(fd.Body, entry)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
}

func (c *checker) simulate(body *ast.BlockStmt, entry locksim.State) {
	s := &locksim.Sim{
		Pass: c.pass,
		Hooks: locksim.Hooks{
			OnCall: c.call,
			OnFuncLit: func(lit *ast.FuncLit, entry locksim.State) {
				c.simulate(lit.Body, entry)
			},
		},
	}
	s.Run(body, entry)
}

// call checks one call site against the callee's RequiresFact, if any.
func (c *checker) call(call *ast.CallExpr, held locksim.State) {
	fn, ok := analysis.Callee(c.pass.Info, call).(*types.Func)
	if !ok {
		return
	}
	var rf RequiresFact
	if !c.pass.ImportObjectFact(fn, &rf) {
		return
	}
	var base ast.Expr
	if rf.BaseIndex == -1 {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return // method expression / non-syntactic receiver
		}
		base = sel.X
	} else {
		if rf.BaseIndex >= len(call.Args) {
			return
		}
		base = call.Args[rf.BaseIndex]
	}
	key := analysis.ExprString(c.pass.Fset, base) + "." + rf.Field.Name()
	if _, ok := held[key]; !ok {
		c.pass.Reportf(call.Pos(), "call to %s (//lad:requires %s.%s) without holding %s",
			fn.Name(), rf.BaseName, rf.Field.Name(), key)
	}
}
