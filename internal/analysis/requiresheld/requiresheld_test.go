package requiresheld_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/requiresheld"
)

func TestRequiresHeld(t *testing.T) {
	analysistest.Run(t, requiresheld.Analyzer, "requiresfixture")
}
