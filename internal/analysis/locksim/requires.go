package locksim

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Req is a resolved //lad:requires annotation: the function must be
// called with <BaseName>.<Field> held.
type Req struct {
	// BaseName is the receiver or parameter name the mutex hangs off.
	BaseName string
	// BaseIndex is the parameter index, or -1 for the receiver.
	BaseIndex int
	// Field is the sync.Mutex / sync.RWMutex field object — the lock
	// class, comparable across functions.
	Field *types.Var
}

// Key returns the lock-state key the requirement corresponds to inside
// the annotated function's own body (e.g. "p.mu"). It matches the keys
// LockOp produces, so a Req can seed a simulation's entry State.
func (r Req) Key() string { return r.BaseName + "." + r.Field.Name() }

// ResolveRequires reads fd's //lad:requires directive, if any, and
// resolves its argument against the function's receiver and parameters.
// The argument forms are "mu" (a mutex field of the receiver) and
// "s.mu" (a mutex field of the receiver or parameter named s). The
// second result reports whether the directive is present; when it is
// present but malformed, the error describes why (requiresheld reports
// it; guardedby just skips the entry-state seeding).
func ResolveRequires(pass *analysis.Pass, fd *ast.FuncDecl) (Req, bool, error) {
	arg, ok := analysis.FuncDirective(fd, "requires")
	if !ok {
		return Req{}, false, nil
	}
	if arg == "" {
		return Req{}, true, fmt.Errorf("//lad:requires needs a mutex argument, e.g. %q or %q", "mu", "s.mu")
	}
	base, field := "", arg
	if i := strings.IndexByte(arg, '.'); i >= 0 {
		base, field = arg[:i], arg[i+1:]
		if base == "" || field == "" || strings.Contains(field, ".") {
			return Req{}, true, fmt.Errorf("//lad:requires %s: argument must be %q or %q", arg, "mu", "base.mu")
		}
	}
	fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return Req{}, true, fmt.Errorf("//lad:requires %s: function did not type-check", arg)
	}
	sig := fn.Type().(*types.Signature)

	type candidate struct {
		name string
		idx  int
		v    *types.Var
	}
	var cands []candidate
	if recv := sig.Recv(); recv != nil {
		cands = append(cands, candidate{recv.Name(), -1, recv})
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		cands = append(cands, candidate{p.Name(), i, p})
	}

	for _, c := range cands {
		if base == "" {
			if c.idx != -1 {
				continue // bare "mu" resolves against the receiver only
			}
		} else if c.name != base {
			continue
		}
		mu := lookupMutexField(c.v.Type(), field)
		if mu == nil {
			return Req{}, true, fmt.Errorf("//lad:requires %s: %s has no sync.Mutex/RWMutex field %q", arg, c.name, field)
		}
		return Req{BaseName: c.name, BaseIndex: c.idx, Field: mu}, true, nil
	}
	if base == "" {
		return Req{}, true, fmt.Errorf("//lad:requires %s: function has no receiver (name the parameter: %q)", arg, "param."+field)
	}
	return Req{}, true, fmt.Errorf("//lad:requires %s: no receiver or parameter named %q", arg, base)
}

// lookupMutexField finds the named direct struct field of t (pointers
// stripped) if it is a sync mutex type.
func lookupMutexField(t types.Type, name string) *types.Var {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != name {
			continue
		}
		if analysis.IsNamedType(f.Type(), "sync", "Mutex") || analysis.IsNamedType(f.Type(), "sync", "RWMutex") {
			return f
		}
		return nil
	}
	return nil
}
