// Package locksim is the shared lock-state simulation engine behind
// guardedby, lockorder, and requiresheld. It walks one function body
// sequentially, tracking which mutexes are provably held at every
// point — Lock/RLock/Unlock/RUnlock calls, defer'd unlocks, if/else
// joins (a branch that cannot fall through does not constrain the code
// after the join), loops (entry ∩ body-end), switch/select clauses —
// and invokes analyzer-supplied hooks at the interesting events:
// acquisitions, releases, field accesses, calls, and function-literal
// boundaries.
//
// Lock identity is two-level, and the distinction is what makes the
// interprocedural analyzers sound:
//
//   - the KEY is the printed base expression plus the mutex field
//     ("p.mu", "c.shards[i].mu") — instance identity within one
//     function, used for held/not-held checks;
//   - the Lock's Obj is the mutex field or variable *types.Object* —
//     class identity across functions, used for the global lock-order
//     graph (every poolEntry.mu is one class no matter which entry).
package locksim

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Lock describes one held mutex.
type Lock struct {
	// Obj is the mutex field or package/local variable object — the lock
	// class. Nil when the base expression is too dynamic to resolve.
	Obj types.Object
	// Read marks RLock acquisitions.
	Read bool
}

// State maps held-lock keys (e.g. "p.mu") to their lock descriptions.
type State map[string]Lock

// Clone copies the state.
func (st State) Clone() State {
	c := make(State, len(st))
	for k, v := range st {
		c[k] = v
	}
	return c
}

// Intersect keeps only keys held in both states.
func Intersect(a, b State) State {
	out := State{}
	for k, v := range a {
		if _, ok := b[k]; ok {
			out[k] = v
		}
	}
	return out
}

// Hooks are the analyzer's event callbacks. Any hook may be nil.
type Hooks struct {
	// OnAcquire fires at a Lock/RLock call site, with the state as it was
	// BEFORE the acquisition takes effect (so held still excludes key —
	// unless it is a re-acquisition, which is exactly what lockorder
	// checks for).
	OnAcquire func(key string, l Lock, call *ast.CallExpr, held State)
	// OnRelease fires at an Unlock/RUnlock call site, before key is
	// removed. Deferred unlocks do not fire it: they change the state at
	// function exit, which the simulation does not model.
	OnRelease func(key string, call *ast.CallExpr, held State)
	// OnAccess fires for every selector expression evaluated under held.
	OnAccess func(sel *ast.SelectorExpr, held State, write bool)
	// OnCall fires for every call expression that is not a lock
	// operation, with the held state at the call. Calls spawned by a go
	// statement fire with an EMPTY state: they run later, on a goroutine
	// that holds nothing.
	OnCall func(call *ast.CallExpr, held State)
	// OnGoCall, when set, receives go-spawned named calls INSTEAD of
	// OnCall. Analyzers that summarize what a function's execution
	// acquires (lockorder) set it so spawned work is not attributed to
	// the caller; analyzers that only care what state the callee will
	// see (requiresheld) leave it nil and get the empty-state OnCall.
	OnGoCall func(call *ast.CallExpr)
	// OnFuncLit fires for every function literal instead of descending
	// into it; entry is the state the literal's body should be simulated
	// under (the current state for deferred literals — the defer-unlock
	// idiom — and empty otherwise, since a closure generally runs after
	// the locks of its creation site are gone). The hook re-enters the
	// simulation itself if it wants the body walked.
	OnFuncLit func(lit *ast.FuncLit, entry State)
}

// Sim simulates one function body.
type Sim struct {
	Pass  *analysis.Pass
	Hooks Hooks
}

// Run simulates body from the given entry state (nil means no locks
// held — pass the //lad:requires entry state for annotated helpers).
func (s *Sim) Run(body *ast.BlockStmt, entry State) {
	if entry == nil {
		entry = State{}
	}
	s.block(body, entry)
}

func (s *Sim) block(b *ast.BlockStmt, st State) State {
	for _, stmt := range b.List {
		st = s.stmt(stmt, st)
	}
	return st
}

func (s *Sim) stmt(stmt ast.Stmt, st State) State {
	switch stmt := stmt.(type) {
	case nil:
		return st
	case *ast.BlockStmt:
		return s.block(stmt, st.Clone())
	case *ast.ExprStmt:
		if key, l, op, ok := LockOp(s.Pass, stmt.X); ok {
			call := ast.Unparen(stmt.X).(*ast.CallExpr)
			st = st.Clone()
			if op == "lock" {
				if s.Hooks.OnAcquire != nil {
					s.Hooks.OnAcquire(key, l, call, st)
				}
				st[key] = l
			} else {
				if s.Hooks.OnRelease != nil {
					s.Hooks.OnRelease(key, call, st)
				}
				delete(st, key)
			}
			return st
		}
		s.check(stmt.X, st, false)
		return st
	case *ast.DeferStmt:
		// A deferred Unlock runs at function exit; it does not change
		// the state at this point. A deferred closure is simulated with
		// the current state (it sees the locks held here only if they
		// are still held at exit — good enough for the tree's
		// defer-unlock idiom).
		if _, _, _, ok := LockOp(s.Pass, stmt.Call); ok {
			return st
		}
		if lit, ok := ast.Unparen(stmt.Call.Fun).(*ast.FuncLit); ok {
			s.funcLit(lit, st.Clone())
			return st
		}
		s.check(stmt.Call, st, false)
		return st
	case *ast.GoStmt:
		if lit, ok := ast.Unparen(stmt.Call.Fun).(*ast.FuncLit); ok {
			s.funcLit(lit, State{}) // runs concurrently: no inherited locks
			for _, arg := range stmt.Call.Args {
				s.check(arg, st, false)
			}
			return st
		}
		// A spawned named call runs with nothing held; its argument
		// expressions are still evaluated here, under the current state.
		if s.Hooks.OnGoCall != nil {
			s.Hooks.OnGoCall(stmt.Call)
		} else if s.Hooks.OnCall != nil {
			s.Hooks.OnCall(stmt.Call, State{})
		}
		for _, arg := range stmt.Call.Args {
			s.check(arg, st, false)
		}
		return st
	case *ast.AssignStmt:
		for _, rhs := range stmt.Rhs {
			s.check(rhs, st, false)
		}
		for _, lhs := range stmt.Lhs {
			s.check(lhs, st, true)
		}
		return st
	case *ast.IncDecStmt:
		s.check(stmt.X, st, true)
		return st
	case *ast.SendStmt:
		s.check(stmt.Chan, st, false)
		s.check(stmt.Value, st, false)
		return st
	case *ast.ReturnStmt:
		for _, r := range stmt.Results {
			s.check(r, st, false)
		}
		return st
	case *ast.IfStmt:
		st = s.stmt(stmt.Init, st)
		s.check(stmt.Cond, st, false)
		thenEnd := s.block(stmt.Body, st.Clone())
		elseEnd := st
		if stmt.Else != nil {
			elseEnd = s.stmt(stmt.Else, st.Clone())
		}
		thenTerm := Terminates(stmt.Body)
		elseTerm := stmt.Else != nil && Terminates(stmt.Else)
		switch {
		case thenTerm && elseTerm:
			return st
		case thenTerm:
			return elseEnd
		case elseTerm:
			return thenEnd
		default:
			return Intersect(thenEnd, elseEnd)
		}
	case *ast.ForStmt:
		st = s.stmt(stmt.Init, st)
		s.check(stmt.Cond, st, false)
		bodyEnd := s.block(stmt.Body, st.Clone())
		bodyEnd = s.stmt(stmt.Post, bodyEnd)
		return Intersect(st, bodyEnd)
	case *ast.RangeStmt:
		s.check(stmt.X, st, false)
		bodyEnd := s.block(stmt.Body, st.Clone())
		return Intersect(st, bodyEnd)
	case *ast.SwitchStmt:
		st = s.stmt(stmt.Init, st)
		s.check(stmt.Tag, st, false)
		return s.clauses(stmt.Body, st)
	case *ast.TypeSwitchStmt:
		st = s.stmt(stmt.Init, st)
		return s.clauses(stmt.Body, st)
	case *ast.SelectStmt:
		return s.clauses(stmt.Body, st)
	case *ast.LabeledStmt:
		return s.stmt(stmt.Stmt, st)
	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.check(v, st, false)
					}
				}
			}
		}
		return st
	default:
		return st
	}
}

// clauses simulates each case of a switch/select from the entry state
// and joins with intersection; the entry state itself participates in
// the join (a switch may match no case).
func (s *Sim) clauses(body *ast.BlockStmt, st State) State {
	merged := st
	for _, clause := range body.List {
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				s.check(e, st, false)
			}
			end := s.stmtsFrom(c.Body, st.Clone())
			if !stmtsTerminate(c.Body) {
				merged = Intersect(merged, end)
			}
		case *ast.CommClause:
			end := st.Clone()
			end = s.stmt(c.Comm, end)
			end = s.stmtsFrom(c.Body, end)
			if !stmtsTerminate(c.Body) {
				merged = Intersect(merged, end)
			}
		}
	}
	return merged
}

func (s *Sim) stmtsFrom(list []ast.Stmt, st State) State {
	for _, stmt := range list {
		st = s.stmt(stmt, st)
	}
	return st
}

func (s *Sim) funcLit(lit *ast.FuncLit, entry State) {
	if s.Hooks.OnFuncLit != nil {
		s.Hooks.OnFuncLit(lit, entry)
	}
}

// check inspects an expression for accesses and calls under st.
func (s *Sim) check(e ast.Expr, st State, write bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.funcLit(n, State{})
			return false
		case *ast.SelectorExpr:
			if s.Hooks.OnAccess != nil {
				s.Hooks.OnAccess(n, st, write)
			}
		case *ast.CallExpr:
			if _, _, _, ok := LockOp(s.Pass, n); !ok && s.Hooks.OnCall != nil {
				s.Hooks.OnCall(n, st)
			}
		}
		return true
	})
}

// LockOp recognizes mu.Lock/RLock/Unlock/RUnlock calls on sync mutexes
// and returns the lock-state key ("<base-expr>.<field>"), the lock
// description (class object + read mode), and "lock" or "unlock".
func LockOp(pass *analysis.Pass, e ast.Expr) (key string, l Lock, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", Lock{}, "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", Lock{}, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", Lock{}, "", false
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", Lock{}, "", false
	}
	l = Lock{Obj: lockClass(pass, sel.X), Read: strings.HasPrefix(sel.Sel.Name, "R")}
	return analysis.ExprString(pass.Fset, sel.X), l, op, true
}

// lockClass resolves the mutex expression (the receiver of the
// Lock/Unlock call) to the field or variable object that declares it.
func lockClass(pass *analysis.Pass, mu ast.Expr) types.Object {
	switch x := ast.Unparen(mu).(type) {
	case *ast.Ident:
		return pass.Info.Uses[x]
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[x]; ok {
			return sel.Obj()
		}
		return pass.Info.Uses[x.Sel] // package-qualified variable
	}
	return nil
}

// Terminates reports whether control cannot flow past the statement
// (ends in return, panic-like call, or an unconditional branch).
func Terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			name := sel.Sel.Name
			return name == "Exit" || name == "Fatal" || name == "Fatalf"
		}
		return false
	case *ast.BlockStmt:
		return stmtsTerminate(s.List)
	case *ast.IfStmt:
		return s.Else != nil && Terminates(s.Body) && Terminates(s.Else)
	}
	return false
}

func stmtsTerminate(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return Terminates(list[len(list)-1])
}
