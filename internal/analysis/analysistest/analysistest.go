// Package analysistest runs a ladvet analyzer over fixture packages and
// checks its diagnostics against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under the analyzer package's testdata/src/<name>
// directory. A comment of the form
//
//	x := foo() // want `cannot call foo`
//
// asserts that the analyzer reports a diagnostic on that line whose
// message matches the (RE2) pattern. Several patterns on one line
// assert several diagnostics. The runner fails the test for every
// unmatched expectation AND for every unexpected diagnostic, so
// fixtures document the analyzer's behavior exactly — including the
// negative cases, which simply carry no want comment.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRE = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)$")
var patRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads each fixture package from testdata/src/<name> (relative to
// the calling test's package directory), runs the analyzer on it, and
// reports mismatches against the want comments through t.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, fixture := range fixtures {
		t.Run(fixture, func(t *testing.T) {
			runFixture(t, root, a, fixture)
		})
	}
}

// RunSuite runs several analyzers over each fixture under ONE shared
// run context: facts flow between analyzers and packages, Finish hooks
// run at the end, and want comments are matched against the combined
// diagnostics. Fixture packages named in deps are loaded first (in
// order, registered under their bare names) so the fixture itself can
// import them — the way interprocedural analyzers see dependency facts
// in the real driver. Want comments in dep files count too.
func RunSuite(t *testing.T, analyzers []*analysis.Analyzer, deps []string, fixtures ...string) {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, fixture := range fixtures {
		t.Run(fixture, func(t *testing.T) {
			runSuiteFixture(t, root, analyzers, deps, fixture)
		})
	}
}

func runFixture(t *testing.T, root string, a *analysis.Analyzer, fixture string) {
	t.Helper()
	_, pkg := loadFixturePkg(t, root, nil, fixture)
	diags, err := analysis.Run(pkg, a)
	if err != nil {
		t.Fatalf("analysistest: running %s on %s: %v", a.Name, fixture, err)
	}
	matchWants(t, []*analysis.Package{pkg}, diags)
}

func runSuiteFixture(t *testing.T, root string, analyzers []*analysis.Analyzer, deps []string, fixture string) {
	t.Helper()
	loader, _ := loadFixturePkg(t, root, deps, fixture)
	ctx := analysis.NewContext(loader)
	ctx.KnownAnalyzers = map[string]bool{}
	for _, a := range analyzers {
		ctx.KnownAnalyzers[a.Name] = true
	}
	pkgs := loader.Packages()
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			ds, err := analysis.RunPass(pkg, a, ctx)
			if err != nil {
				t.Fatalf("analysistest: running %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
			diags = append(diags, ds...)
		}
	}
	for _, a := range analyzers {
		if a.Finish != nil {
			diags = append(diags, a.Finish(ctx)...)
		}
	}
	matchWants(t, pkgs, diags)
}

// loadFixturePkg builds a loader rooted at the module, preloads the dep
// fixtures under their bare import paths, and loads the main fixture.
func loadFixturePkg(t *testing.T, root string, deps []string, fixture string) (*analysis.Loader, *analysis.Package) {
	t.Helper()
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var pkg *analysis.Package
	for _, name := range append(append([]string{}, deps...), fixture) {
		dir, err := filepath.Abs(filepath.Join("testdata", "src", name))
		if err != nil {
			t.Fatal(err)
		}
		pkg, err = loader.LoadDir(dir, name)
		if err != nil {
			t.Fatalf("analysistest: loading fixture %s: %v", name, err)
		}
	}
	return loader, pkg
}

func matchWants(t *testing.T, pkgs []*analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		ws, err := collectWants(pkg)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		wants = append(wants, ws...)
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %s, got none", w.file, w.line, w.raw)
		}
	}
}

// collectWants extracts want expectations from every fixture file's
// comments.
func collectWants(pkg *analysis.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "want ") && strings.Contains(c.Text, "`") {
						pos := pkg.Fset.Position(c.Pos())
						return nil, fmt.Errorf("%s:%d: malformed want comment: %s", pos.Filename, pos.Line, c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range patRE.FindAllString(m[1], -1) {
					var pat string
					if raw[0] == '`' {
						pat = raw[1 : len(raw)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(raw)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, raw, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants, nil
}

// moduleRoot walks up from the working directory (the package dir under
// `go test`) to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
