// Package analysistest runs a ladvet analyzer over fixture packages and
// checks its diagnostics against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under the analyzer package's testdata/src/<name>
// directory. A comment of the form
//
//	x := foo() // want `cannot call foo`
//
// asserts that the analyzer reports a diagnostic on that line whose
// message matches the (RE2) pattern. Several patterns on one line
// assert several diagnostics. The runner fails the test for every
// unmatched expectation AND for every unexpected diagnostic, so
// fixtures document the analyzer's behavior exactly — including the
// negative cases, which simply carry no want comment.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRE = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)$")
var patRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads each fixture package from testdata/src/<name> (relative to
// the calling test's package directory), runs the analyzer on it, and
// reports mismatches against the want comments through t.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, fixture := range fixtures {
		t.Run(fixture, func(t *testing.T) {
			runFixture(t, root, a, fixture)
		})
	}
}

func runFixture(t *testing.T, root string, a *analysis.Analyzer, fixture string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	pkg, err := loader.LoadDir(dir, fixture)
	if err != nil {
		t.Fatalf("analysistest: loading fixture %s: %v", fixture, err)
	}
	diags, err := analysis.Run(pkg, a)
	if err != nil {
		t.Fatalf("analysistest: running %s on %s: %v", a.Name, fixture, err)
	}

	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %s, got none", w.file, w.line, w.raw)
		}
	}
}

// collectWants extracts want expectations from every fixture file's
// comments.
func collectWants(pkg *analysis.Package) ([]*expectation, error) {
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.Contains(c.Text, "want ") && strings.Contains(c.Text, "`") {
						pos := pkg.Fset.Position(c.Pos())
						return nil, fmt.Errorf("%s:%d: malformed want comment: %s", pos.Filename, pos.Line, c.Text)
					}
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, raw := range patRE.FindAllString(m[1], -1) {
					var pat string
					if raw[0] == '`' {
						pat = raw[1 : len(raw)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(raw)
						if err != nil {
							return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, raw, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want regexp %s: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants, nil
}

// moduleRoot walks up from the working directory (the package dir under
// `go test`) to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
