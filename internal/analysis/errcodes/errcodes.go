// Package errcodes machine-checks the serving API's error taxonomy.
// The contract (internal/serve/errors.go) is: one ErrorCode constant ↔
// one HTTP status, with codeStatus as the single canonical table, and
// every error leaving the server wrapped in the structured
// {"error": {...}} envelope.
//
// Two rules:
//
//  1. The code↔status table is total in both directions: every declared
//     ErrorCode constant appears as a key of codeStatus, and every key
//     of codeStatus is a declared ErrorCode constant (no raw string
//     keys, no orphan entries).
//  2. No handler bypasses the envelope: calls to http.Error and bare
//     w.WriteHeader(...) on an http.ResponseWriter are flagged. The two
//     legitimate sites — the envelope writer itself and the
//     status-recording middleware — carry //lint:ignore directives with
//     their justification.
//
// The cmd/ladvet driver applies this analyzer to internal/serve.
package errcodes

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the errcodes check.
var Analyzer = &analysis.Analyzer{
	Name: "errcodes",
	Doc:  "ErrorCode constants and the codeStatus table must match exactly; error writes must use the structured envelope",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	checkTable(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkBypass(pass, call)
			return true
		})
	}
	return nil
}

// checkTable verifies ErrorCode consts ↔ codeStatus keys both ways.
// Packages that declare no ErrorCode type are skipped, which keeps the
// analyzer harmless if it is ever pointed somewhere else.
func checkTable(pass *analysis.Pass) {
	scope := pass.Pkg.Scope()
	codeObj, ok := scope.Lookup("ErrorCode").(*types.TypeName)
	if !ok {
		return
	}
	codeType := codeObj.Type()

	// All package-level constants of type ErrorCode, with positions.
	consts := map[string]*types.Const{}
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), codeType) {
			consts[name] = c
		}
	}

	// The key set of the codeStatus composite literal.
	tablePos, keys := codeStatusKeys(pass)
	if tablePos == 0 {
		if len(consts) > 0 {
			pass.Reportf(pass.Files[0].Pos(), "package declares ErrorCode constants but no codeStatus table literal was found")
		}
		return
	}
	for name, c := range consts {
		if !keys[name] {
			pass.Reportf(c.Pos(), "ErrorCode constant %s has no entry in codeStatus: every code must map to exactly one HTTP status", name)
		}
	}
}

// codeStatusKeys locates `var codeStatus = map[ErrorCode]int{...}` and
// returns its position plus the set of constant names used as keys. Keys
// that are not identifiers of declared constants are reported directly
// (a raw-string key would silently desynchronize the taxonomy).
func codeStatusKeys(pass *analysis.Pass) (pos int, keys map[string]bool) {
	keys = map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "codeStatus" || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				pos = int(lit.Pos())
				for _, elt := range lit.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if id, ok := ast.Unparen(kv.Key).(*ast.Ident); ok {
						if _, isConst := pass.Info.Uses[id].(*types.Const); isConst {
							keys[id.Name] = true
							continue
						}
					}
					pass.Reportf(kv.Key.Pos(), "codeStatus key %s is not a declared ErrorCode constant", analysis.ExprString(pass.Fset, kv.Key))
				}
			}
		}
	}
	return pos, keys
}

// checkBypass flags http.Error calls and bare WriteHeader calls on an
// http.ResponseWriter.
func checkBypass(pass *analysis.Pass, call *ast.CallExpr) {
	obj := analysis.Callee(pass.Info, call)
	if obj == nil {
		return
	}
	if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Error" {
		pass.Reportf(call.Pos(), "http.Error bypasses the structured error envelope; use writeAPIError")
		return
	}
	if obj.Name() != "WriteHeader" {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if recv, ok := pass.Info.Types[sel.X]; ok && isResponseWriter(recv.Type) {
		pass.Reportf(call.Pos(), "bare WriteHeader bypasses the error envelope and the code↔status table; use writeJSON/writeAPIError")
	}
}

// isResponseWriter reports whether t is (or points to / embeds as its
// interface) net/http.ResponseWriter.
func isResponseWriter(t types.Type) bool {
	if analysis.IsNamedType(t, "net/http", "ResponseWriter") {
		return true
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	// An interface that embeds ResponseWriter still carries its methods;
	// identifying by method set is robust against wrapping.
	var hasWriteHeader, hasHeader bool
	for i := 0; i < iface.NumMethods(); i++ {
		switch iface.Method(i).Name() {
		case "WriteHeader":
			hasWriteHeader = true
		case "Header":
			hasHeader = true
		}
	}
	return hasWriteHeader && hasHeader
}
