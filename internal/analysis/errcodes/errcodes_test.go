package errcodes_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errcodes"
)

func TestErrCodes(t *testing.T) {
	analysistest.Run(t, errcodes.Analyzer, "errfixture")
}
