// Package errfixture exercises the errcodes analyzer: an ErrorCode
// constant missing from codeStatus fires, a non-constant table key
// fires, envelope-bypassing writes fire, and the //lint:ignore escape
// hatch suppresses the one legitimate site.
package errfixture

import "net/http"

type ErrorCode string

const (
	CodeOK      ErrorCode = "ok"
	CodeBad     ErrorCode = "bad"
	CodeMissing ErrorCode = "missing" // want `has no entry in codeStatus`
)

var codeStatus = map[ErrorCode]int{
	CodeOK:  http.StatusOK,
	CodeBad: http.StatusBadRequest,
	"rogue": http.StatusTeapot, // want `not a declared ErrorCode constant`
}

func handler(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http\.Error bypasses`
	w.WriteHeader(http.StatusTeapot)                      // want `bare WriteHeader bypasses`
}

// envelope is the one sanctioned writer; the directive documents why.
func envelope(w http.ResponseWriter, code ErrorCode) {
	//lint:ignore ladvet/errcodes this is the envelope writer itself
	w.WriteHeader(codeStatus[code])
}
