// Package guardedfixture exercises the guardedby analyzer: unguarded
// access to //lad:guardedby fields fires, while lock-dominated access,
// fresh-local construction, Locked-suffix callees, //lad:setup setters,
// and self-locking closures do not.
package guardedfixture

import "sync"

type registry struct {
	mu sync.Mutex
	//lad:guardedby mu
	items map[string]int
	//lad:guardedby setup
	capacity int
}

// newRegistry touches guarded fields through a provably-fresh local.
func newRegistry() *registry {
	r := &registry{}
	r.items = map[string]int{}
	r.capacity = 4
	return r
}

// SetCapacity is the sanctioned configure-before-serving setter.
//
//lad:setup
func (r *registry) SetCapacity(n int) {
	r.capacity = n
}

// Grow mutates a setup field after serving has begun.
func (r *registry) Grow(n int) {
	r.capacity = n // want `write to setup-guarded field`
}

// Capacity reads a setup field lock-free — reads are the design.
func (r *registry) Capacity() int {
	return r.capacity
}

// Lookup holds the mutex across the access (defer-unlock idiom).
func (r *registry) Lookup(k string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.items[k]
}

// race reads the guarded map with no lock at all.
func (r *registry) race(k string) int {
	return r.items[k] // want `without holding r.mu`
}

// branchy joins lock state across branches: after the early-unlock
// branch returns, the straight-line path still holds the lock; after
// the explicit Unlock it does not.
func (r *registry) branchy(k string, done bool) {
	r.mu.Lock()
	if done {
		r.mu.Unlock()
		return
	}
	r.items[k] = 1
	r.mu.Unlock()
	r.items[k] = 2 // want `without holding r.mu`
}

// putLocked asserts caller-holds-lock by naming convention.
func (r *registry) putLocked(k string) {
	r.items[k] = 3
}

// dropLocked upgrades the convention to a checked contract: simulated
// with r.mu held, so the guarded access is clean — but releasing and
// touching again is caught even inside a requires-annotated helper.
//
//lad:requires mu
func (r *registry) dropLocked(k string) {
	delete(r.items, k)
	r.mu.Unlock()
	r.items[k] = 0 // want `without holding r.mu`
}

// scrub declares its precondition on a parameter's mutex rather than a
// receiver's.
//
//lad:requires reg.mu
func scrub(reg *registry, k string) {
	reg.items[k] = 0
}

// closures run later: a goroutine body starts with no inherited locks,
// and a closure that takes the lock itself is fine.
func (r *registry) closures() {
	go func() {
		r.items["x"] = 1 // want `without holding r.mu`
	}()
	f := func() {
		r.mu.Lock()
		r.items["y"] = 2
		r.mu.Unlock()
	}
	f()
}

// looped keeps the lock across iterations.
func (r *registry) looped(keys []string) {
	r.mu.Lock()
	for _, k := range keys {
		r.items[k]++
	}
	r.mu.Unlock()
}

// relock exercises the unlock-work-relock pattern inside a loop.
func (r *registry) relock(keys []string) {
	r.mu.Lock()
	for _, k := range keys {
		r.mu.Unlock()
		expensive(k)
		r.mu.Lock()
		r.items[k] = 9
	}
	r.mu.Unlock()
}

func expensive(string) {}

// sharded guards per-shard state: each shard's map is guarded by the
// shard's own mutex, keyed by the full base expression.
type sharded struct {
	shards [4]shard
}

type shard struct {
	mu sync.Mutex
	//lad:guardedby mu
	ent map[string]int
}

// newSharded initializes shard state through an indexed path rooted at
// a fresh local — still provably unshared, so no lock is needed.
func newSharded() *sharded {
	c := &sharded{}
	for i := range c.shards {
		c.shards[i].ent = map[string]int{}
	}
	return c
}

// shardGet locks the one shard it touches; the key tracks the indexed
// base expression, and a different shard's lock does not count.
func (c *sharded) shardGet(i int, k string) int {
	s := &c.shards[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ent[k]
}

// shardRace touches a shard map without that shard's lock.
func (c *sharded) shardRace(i int, k string) int {
	return c.shards[i].ent[k] // want `without holding c.shards\[i\].mu`
}
