// Package guardedby checks mutex-protection annotations on struct
// fields. A field carrying
//
//	//lad:guardedby mu
//
// (where mu names a sync.Mutex / sync.RWMutex sibling field) may only be
// accessed while that mutex is held on the same base value: the analyzer
// simulates lock state sequentially through each function body (the
// shared locksim engine — Lock/Unlock calls, defer'd Unlocks, if/else
// joins, loops, switches) and reports any guarded-field access at a
// point where the base's mutex is not provably held.
//
// The variant
//
//	//lad:guardedby setup
//
// marks configure-before-serving fields: reads are free (the serving
// hot paths read them lock-free by design), but writes are only legal
// inside functions annotated //lad:setup — the option/setter phase that
// completes before the value is shared.
//
// Exemptions, matching the repository's conventions:
//
//   - functions annotated //lad:requires <mu> are simulated with that
//     mutex already held — the declared precondition IS the entry state
//     (requiresheld checks the call sites)
//   - functions whose name ends in "Locked" WITHOUT a //lad:requires
//     annotation assert caller-holds-lock informally; their bodies are
//     not simulated (annotating them upgrades the convention to a
//     checked contract)
//   - accesses through provably-fresh locals (x := &T{...} / new(T) in
//     the same function) are exempt: nothing else can see the value yet
//   - function literals are simulated with empty lock state — a closure
//     runs later, so it must acquire locks itself (deferred literals
//     inherit the current state: the defer-unlock idiom)
//
// Only fields declared in the analyzed package can be annotated; the
// guarded state in this repository (detector pool entries, metrics
// registry, expectation-cache shards) is all unexported, so in-package
// checking is full coverage.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/locksim"
)

// Analyzer is the guardedby check.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "//lad:guardedby fields must be accessed under their mutex (or, for setup fields, written only in //lad:setup functions)",
	Run:  run,
}

type guard struct {
	mu    string // mutex sibling-field name; "" when setup
	setup bool
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			entry := locksim.State{}
			req, has, err := locksim.ResolveRequires(pass, fd)
			switch {
			case has && err == nil:
				entry[req.Key()] = locksim.Lock{Obj: req.Field}
			case has:
				// Malformed directive: requiresheld reports it; here we
				// just get no entry state.
			case strings.HasSuffix(fd.Name.Name, "Locked"):
				continue // unchecked caller-holds-lock convention
			}
			c := &checker{
				pass:    pass,
				guards:  guards,
				fresh:   freshLocals(pass, fd),
				inSetup: analysis.FuncAnnotated(fd, "setup"),
			}
			c.simulate(fd.Body, entry)
		}
	}
	return nil
}

// collectGuards maps annotated field objects to their guard spec,
// validating that a named mutex is a sibling field of a sync type.
func collectGuards(pass *analysis.Pass) map[types.Object]guard {
	guards := map[types.Object]guard{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			siblings := map[string]bool{}
			for _, field := range st.Fields.List {
				if !isSyncType(pass, field.Type) {
					continue
				}
				for _, name := range field.Names {
					siblings[name.Name] = true
				}
			}
			for _, field := range st.Fields.List {
				arg, ok := analysis.FieldDirective(field, "guardedby")
				if !ok {
					continue
				}
				g := guard{mu: arg, setup: arg == "setup"}
				if !g.setup && !siblings[arg] {
					pass.Reportf(field.Pos(), "//lad:guardedby %s does not name a sync.Mutex/RWMutex sibling field", arg)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guards[obj] = g
					}
				}
			}
			return true
		})
	}
	return guards
}

func isSyncType(pass *analysis.Pass, typeExpr ast.Expr) bool {
	tv, ok := pass.Info.Types[typeExpr]
	if !ok {
		return false
	}
	return analysis.IsNamedType(tv.Type, "sync", "Mutex") || analysis.IsNamedType(tv.Type, "sync", "RWMutex")
}

// freshLocals collects names assigned from &T{...}, T{...}, or new(T)
// anywhere in the function: values nothing else can reference yet, so
// constructor-style initialization needs no lock.
func freshLocals(pass *analysis.Pass, fd *ast.FuncDecl) map[string]bool {
	fresh := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			switch r := ast.Unparen(rhs).(type) {
			case *ast.CompositeLit:
				fresh[id.Name] = true
			case *ast.UnaryExpr:
				if r.Op == token.AND {
					if _, ok := ast.Unparen(r.X).(*ast.CompositeLit); ok {
						fresh[id.Name] = true
					}
				}
			case *ast.CallExpr:
				if analysis.IsBuiltinCall(pass.Info, r, "new") {
					fresh[id.Name] = true
				}
			}
		}
		return true
	})
	return fresh
}

// checker reports guarded-field accesses made without the mutex held,
// driving the shared locksim simulation.
type checker struct {
	pass    *analysis.Pass
	guards  map[types.Object]guard
	fresh   map[string]bool
	inSetup bool
}

func (c *checker) simulate(body *ast.BlockStmt, entry locksim.State) {
	s := &locksim.Sim{
		Pass: c.pass,
		Hooks: locksim.Hooks{
			OnAccess: c.access,
			OnFuncLit: func(lit *ast.FuncLit, entry locksim.State) {
				// Fresh-local knowledge does not transfer: by the time a
				// closure runs, its captured value may be shared.
				inner := &checker{pass: c.pass, guards: c.guards, fresh: map[string]bool{}, inSetup: c.inSetup}
				inner.simulate(lit.Body, entry)
			},
		},
	}
	s.Run(body, entry)
}

func (c *checker) access(sel *ast.SelectorExpr, held locksim.State, write bool) {
	selection, ok := c.pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	g, ok := c.guards[selection.Obj()]
	if !ok {
		return
	}
	if id := rootIdent(sel.X); id != nil && c.fresh[id.Name] {
		return
	}
	if g.setup {
		if write && !c.inSetup {
			c.pass.Reportf(sel.Sel.Pos(), "write to setup-guarded field %q outside a //lad:setup function: these fields are configure-before-serving", sel.Sel.Name)
		}
		return
	}
	key := analysis.ExprString(c.pass.Fset, sel.X) + "." + g.mu
	if _, ok := held[key]; !ok {
		c.pass.Reportf(sel.Sel.Pos(), "access to field %q (//lad:guardedby %s) without holding %s", sel.Sel.Name, g.mu, key)
	}
}

// rootIdent walks a selector base through selector, index, star, and
// paren nodes to its root identifier: c.shards[i].ent is rooted at c.
// If the root is a fresh local, everything reachable from it is still
// unshared, so the whole access chain is exempt.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
