// Package guardedby checks mutex-protection annotations on struct
// fields. A field carrying
//
//	//lad:guardedby mu
//
// (where mu names a sync.Mutex / sync.RWMutex sibling field) may only be
// accessed while that mutex is held on the same base value: the analyzer
// simulates lock state sequentially through each function body —
// Lock/Unlock calls, defer'd Unlocks, if/else joins (a branch that
// returns doesn't constrain the code after the join), loops, and
// switches — and reports any guarded-field access at a point where the
// base's mutex is not provably held.
//
// The variant
//
//	//lad:guardedby setup
//
// marks configure-before-serving fields: reads are free (the serving
// hot paths read them lock-free by design), but writes are only legal
// inside functions annotated //lad:setup — the option/setter phase that
// completes before the value is shared.
//
// Exemptions, matching the repository's conventions:
//
//   - functions whose name ends in "Locked" assert caller-holds-lock;
//     their bodies are not simulated (the convention is checked at
//     their call sites, which must hold the lock to call them)
//   - accesses through provably-fresh locals (x := &T{...} / new(T) in
//     the same function) are exempt: nothing else can see the value yet
//   - function literals are simulated with empty lock state — a closure
//     runs later, so it must acquire locks itself
//
// Only fields declared in the analyzed package can be annotated; the
// guarded state in this repository (detector pool entries, metrics
// registry, expectation-cache shards) is all unexported, so in-package
// checking is full coverage.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the guardedby check.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc:  "//lad:guardedby fields must be accessed under their mutex (or, for setup fields, written only in //lad:setup functions)",
	Run:  run,
}

type guard struct {
	mu    string // mutex sibling-field name; "" when setup
	setup bool
}

func run(pass *analysis.Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue // caller-holds-lock convention
			}
			s := &sim{
				pass:    pass,
				guards:  guards,
				fresh:   freshLocals(pass, fd),
				inSetup: analysis.FuncAnnotated(fd, "setup"),
			}
			s.block(fd.Body, state{})
		}
	}
	return nil
}

// collectGuards maps annotated field objects to their guard spec,
// validating that a named mutex is a sibling field of a sync type.
func collectGuards(pass *analysis.Pass) map[types.Object]guard {
	guards := map[types.Object]guard{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			siblings := map[string]bool{}
			for _, field := range st.Fields.List {
				if !isSyncType(pass, field.Type) {
					continue
				}
				for _, name := range field.Names {
					siblings[name.Name] = true
				}
			}
			for _, field := range st.Fields.List {
				arg, ok := analysis.FieldDirective(field, "guardedby")
				if !ok {
					continue
				}
				g := guard{mu: arg, setup: arg == "setup"}
				if !g.setup && !siblings[arg] {
					pass.Reportf(field.Pos(), "//lad:guardedby %s does not name a sync.Mutex/RWMutex sibling field", arg)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						guards[obj] = g
					}
				}
			}
			return true
		})
	}
	return guards
}

func isSyncType(pass *analysis.Pass, typeExpr ast.Expr) bool {
	tv, ok := pass.Info.Types[typeExpr]
	if !ok {
		return false
	}
	return analysis.IsNamedType(tv.Type, "sync", "Mutex") || analysis.IsNamedType(tv.Type, "sync", "RWMutex")
}

// freshLocals collects names assigned from &T{...}, T{...}, or new(T)
// anywhere in the function: values nothing else can reference yet, so
// constructor-style initialization needs no lock.
func freshLocals(pass *analysis.Pass, fd *ast.FuncDecl) map[string]bool {
	fresh := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			switch r := ast.Unparen(rhs).(type) {
			case *ast.CompositeLit:
				fresh[id.Name] = true
			case *ast.UnaryExpr:
				if r.Op == token.AND {
					if _, ok := ast.Unparen(r.X).(*ast.CompositeLit); ok {
						fresh[id.Name] = true
					}
				}
			case *ast.CallExpr:
				if analysis.IsBuiltinCall(pass.Info, r, "new") {
					fresh[id.Name] = true
				}
			}
		}
		return true
	})
	return fresh
}

// state is the set of held-lock keys, e.g. {"p.mu", "shard.mu"}.
type state map[string]bool

func (st state) clone() state {
	c := make(state, len(st))
	for k := range st {
		c[k] = true
	}
	return c
}

func intersect(a, b state) state {
	out := state{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

type sim struct {
	pass    *analysis.Pass
	guards  map[types.Object]guard
	fresh   map[string]bool
	inSetup bool
}

func (s *sim) block(b *ast.BlockStmt, st state) state {
	for _, stmt := range b.List {
		st = s.stmt(stmt, st)
	}
	return st
}

func (s *sim) stmt(stmt ast.Stmt, st state) state {
	switch stmt := stmt.(type) {
	case nil:
		return st
	case *ast.BlockStmt:
		return s.block(stmt, st.clone())
	case *ast.ExprStmt:
		if key, op, ok := lockOp(s.pass, stmt.X); ok {
			if op == "lock" {
				st = st.clone()
				st[key] = true
			} else {
				st = st.clone()
				delete(st, key)
			}
			return st
		}
		s.check(stmt.X, st, false)
		return st
	case *ast.DeferStmt:
		// A deferred Unlock runs at function exit; it does not change
		// the state at this point. A deferred closure is simulated with
		// the current state (it sees the locks held here only if they
		// are still held at exit — good enough for the tree's
		// defer-unlock idiom).
		if _, _, ok := lockOp(s.pass, stmt.Call); ok {
			return st
		}
		if lit, ok := ast.Unparen(stmt.Call.Fun).(*ast.FuncLit); ok {
			s.funcLit(lit, st.clone())
			return st
		}
		s.check(stmt.Call, st, false)
		return st
	case *ast.GoStmt:
		if lit, ok := ast.Unparen(stmt.Call.Fun).(*ast.FuncLit); ok {
			s.funcLit(lit, state{}) // runs concurrently: no inherited locks
			for _, arg := range stmt.Call.Args {
				s.check(arg, st, false)
			}
			return st
		}
		s.check(stmt.Call, st, false)
		return st
	case *ast.AssignStmt:
		for _, rhs := range stmt.Rhs {
			s.check(rhs, st, false)
		}
		for _, lhs := range stmt.Lhs {
			s.check(lhs, st, true)
		}
		return st
	case *ast.IncDecStmt:
		s.check(stmt.X, st, true)
		return st
	case *ast.SendStmt:
		s.check(stmt.Chan, st, false)
		s.check(stmt.Value, st, false)
		return st
	case *ast.ReturnStmt:
		for _, r := range stmt.Results {
			s.check(r, st, false)
		}
		return st
	case *ast.IfStmt:
		st = s.stmt(stmt.Init, st)
		s.check(stmt.Cond, st, false)
		thenEnd := s.block(stmt.Body, st.clone())
		elseEnd := st
		if stmt.Else != nil {
			elseEnd = s.stmt(stmt.Else, st.clone())
		}
		thenTerm := terminates(stmt.Body)
		elseTerm := stmt.Else != nil && terminates(stmt.Else)
		switch {
		case thenTerm && elseTerm:
			return st
		case thenTerm:
			return elseEnd
		case elseTerm:
			return thenEnd
		default:
			return intersect(thenEnd, elseEnd)
		}
	case *ast.ForStmt:
		st = s.stmt(stmt.Init, st)
		s.check(stmt.Cond, st, false)
		bodyEnd := s.block(stmt.Body, st.clone())
		bodyEnd = s.stmt(stmt.Post, bodyEnd)
		return intersect(st, bodyEnd)
	case *ast.RangeStmt:
		s.check(stmt.X, st, false)
		bodyEnd := s.block(stmt.Body, st.clone())
		return intersect(st, bodyEnd)
	case *ast.SwitchStmt:
		st = s.stmt(stmt.Init, st)
		s.check(stmt.Tag, st, false)
		return s.clauses(stmt.Body, st)
	case *ast.TypeSwitchStmt:
		st = s.stmt(stmt.Init, st)
		return s.clauses(stmt.Body, st)
	case *ast.SelectStmt:
		return s.clauses(stmt.Body, st)
	case *ast.LabeledStmt:
		return s.stmt(stmt.Stmt, st)
	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						s.check(v, st, false)
					}
				}
			}
		}
		return st
	default:
		return st
	}
}

// clauses simulates each case of a switch/select from the entry state
// and joins with intersection; the entry state itself participates in
// the join (a switch may match no case).
func (s *sim) clauses(body *ast.BlockStmt, st state) state {
	merged := st
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				s.check(e, st, false)
			}
			stmts = c.Body
		case *ast.CommClause:
			end := st.clone()
			end = s.stmt(c.Comm, end)
			end = s.stmtsFrom(c.Body, end)
			if !stmtsTerminate(c.Body) {
				merged = intersect(merged, end)
			}
			continue
		default:
			continue
		}
		end := s.stmtsFrom(stmts, st.clone())
		if !stmtsTerminate(stmts) {
			merged = intersect(merged, end)
		}
	}
	return merged
}

func (s *sim) stmtsFrom(list []ast.Stmt, st state) state {
	for _, stmt := range list {
		st = s.stmt(stmt, st)
	}
	return st
}

// funcLit simulates a function literal body under the given entry
// state. Fresh-local knowledge does not transfer: by the time a closure
// runs, its captured value may be shared.
func (s *sim) funcLit(lit *ast.FuncLit, st state) {
	inner := &sim{pass: s.pass, guards: s.guards, fresh: map[string]bool{}, inSetup: s.inSetup}
	inner.block(lit.Body, st)
}

// check inspects an expression for guarded-field accesses under st.
func (s *sim) check(e ast.Expr, st state, write bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			s.funcLit(n, state{})
			return false
		case *ast.SelectorExpr:
			s.selector(n, st, write)
		}
		return true
	})
}

func (s *sim) selector(sel *ast.SelectorExpr, st state, write bool) {
	selection, ok := s.pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	g, ok := s.guards[selection.Obj()]
	if !ok {
		return
	}
	if id := rootIdent(sel.X); id != nil && s.fresh[id.Name] {
		return
	}
	if g.setup {
		if write && !s.inSetup {
			s.pass.Reportf(sel.Sel.Pos(), "write to setup-guarded field %q outside a //lad:setup function: these fields are configure-before-serving", sel.Sel.Name)
		}
		return
	}
	key := analysis.ExprString(s.pass.Fset, sel.X) + "." + g.mu
	if !st[key] {
		s.pass.Reportf(sel.Sel.Pos(), "access to field %q (//lad:guardedby %s) without holding %s", sel.Sel.Name, g.mu, key)
	}
}

// rootIdent walks a selector base through selector, index, star, and
// paren nodes to its root identifier: c.shards[i].ent is rooted at c.
// If the root is a fresh local, everything reachable from it is still
// unshared, so the whole access chain is exempt.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// lockOp recognizes mu.Lock/RLock/Unlock/RUnlock calls on sync mutexes
// and returns the lock-state key ("<base-expr>" of the mutex selector).
func lockOp(pass *analysis.Pass, e ast.Expr) (key, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		op = "lock"
	case "Unlock", "RUnlock":
		op = "unlock"
	default:
		return "", "", false
	}
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	return analysis.ExprString(pass.Fset, sel.X), op, true
}

// terminates reports whether control cannot flow past the statement
// (ends in return, panic-like call, or an unconditional branch).
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return s.Tok == token.BREAK || s.Tok == token.CONTINUE || s.Tok == token.GOTO
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			name := sel.Sel.Name
			return name == "Exit" || name == "Fatal" || name == "Fatalf"
		}
		return false
	case *ast.BlockStmt:
		return stmtsTerminate(s.List)
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Body) && terminates(s.Else)
	}
	return false
}

func stmtsTerminate(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	return terminates(list[len(list)-1])
}
