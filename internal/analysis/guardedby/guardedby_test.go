package guardedby_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, guardedby.Analyzer, "guardedfixture")
}
