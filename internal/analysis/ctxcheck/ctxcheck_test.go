package ctxcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxcheck"
)

func TestCtxCheck(t *testing.T) {
	analysistest.Run(t, ctxcheck.Analyzer, "ctxfixture")
}
