// Package ctxfixture exercises the ctxcheck analyzer: unbounded loops
// in //lad:ctx functions fire unless they consult the context; bounded
// loops and unannotated functions are out of scope.
package ctxfixture

import "context"

// pump drains a work channel with no way to cancel.
//
//lad:ctx
func pump(ctx context.Context, work chan int) int {
	total := 0
	for w := range work { // want `channel-range loop never consults`
		total += w
	}
	return total
}

// pumpCancellable is the fixed shape: the select consults ctx.Done.
//
//lad:ctx
func pumpCancellable(ctx context.Context, work chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case w, ok := <-work:
			if !ok {
				return total
			}
			total += w
		}
	}
}

// spin busy-waits without a context escape.
//
//lad:ctx
func spin(ctx context.Context, ready *bool) int {
	n := 0
	for { // want `unbounded for-loop never consults`
		n++
		if *ready {
			break
		}
	}
	return n
}

// trimRounds is bounded: counted loops terminate on their own.
//
//lad:ctx
func trimRounds(ctx context.Context, rounds int) int {
	n := 0
	for i := 0; i < rounds; i++ {
		n++
	}
	return n
}

// unannotated long loops are not this analyzer's business.
func unannotated(work chan int) int {
	total := 0
	for w := range work {
		total += w
	}
	return total
}
