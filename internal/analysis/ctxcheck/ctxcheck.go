// Package ctxcheck is the static footprint of the ROADMAP's
// cancellable-scheduler item: long-running functions annotated
//
//	//lad:ctx
//
// must not contain unbounded loops that never consult a
// context.Context. An unbounded loop is `for { ... }` (no condition) or
// `for x := range ch` over a channel — the shapes a Monte-Carlo trial
// pump or a wait-for-state loop takes. Consulting the context means
// calling Done, Err, or Deadline on a context.Context anywhere in the
// loop body (typically `case <-ctx.Done():` in a select).
//
// Bounded loops (counted trim rounds, slice ranges) are fine without a
// context: they terminate on their own. Functions that knowingly
// predate cancellation support carry //lint:ignore directives pointing
// at the ROADMAP item so the debt stays visible at the call site.
package ctxcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the ctxcheck check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxcheck",
	Doc:  "unbounded loops in //lad:ctx functions must consult a context.Context",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !analysis.FuncAnnotated(fd, "ctx") {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.ForStmt:
			if loop.Cond == nil && !consultsContext(pass, loop.Body) {
				pass.Reportf(loop.Pos(), "unbounded for-loop never consults a context.Context; add a ctx.Done() escape (ROADMAP: cancellable scheduling)")
			}
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[loop.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && !consultsContext(pass, loop.Body) {
					pass.Reportf(loop.Pos(), "channel-range loop never consults a context.Context; add a ctx.Done() escape (ROADMAP: cancellable scheduling)")
				}
			}
		}
		return true
	})
}

// consultsContext reports whether any call to Done/Err/Deadline on a
// context.Context value appears in the loop body.
func consultsContext(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Done", "Err", "Deadline":
		default:
			return true
		}
		if tv, ok := pass.Info.Types[sel.X]; ok && analysis.IsNamedType(tv.Type, "context", "Context") {
			found = true
		}
		return true
	})
	return found
}
