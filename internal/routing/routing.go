// Package routing implements greedy geographic forwarding — the
// application class the LAD paper's introduction motivates ("location
// information is also important for geographic routing protocols, in
// which such information is used to select the next forwarding host").
//
// The router is deliberately simple (GPSR's greedy mode with a
// radius-bounded final hop and no perimeter recovery): its purpose here
// is to quantify what localization attacks do to a location-dependent
// service, and how much LAD-gating — refusing to forward through nodes
// whose locations failed verification — restores.
package routing

import (
	"errors"

	"repro/internal/geom"
	"repro/internal/wsn"
)

// LocationProvider reports the location a node *advertises*. Honest
// nodes advertise their localization result; attacked nodes a forged
// one. ok=false means the node advertises nothing (e.g. LAD rejected its
// location) and cannot be chosen as a next hop.
type LocationProvider func(id wsn.NodeID) (geom.Point, bool)

// TrueLocations advertises every node's actual resident point.
func TrueLocations(net *wsn.Network) LocationProvider {
	return func(id wsn.NodeID) (geom.Point, bool) {
		return net.Node(id).Pos, true
	}
}

// Router performs greedy geographic forwarding over a network.
type Router struct {
	net  *wsn.Network
	locs LocationProvider
	// MaxHops bounds a route; 0 selects a generous default derived from
	// the field diagonal over the radio range.
	MaxHops int
}

// NewRouter builds a router using the given advertised locations.
func NewRouter(net *wsn.Network, locs LocationProvider) *Router {
	return &Router{net: net, locs: locs}
}

// Routing errors.
var (
	// ErrVoid means greedy forwarding hit a local minimum: no neighbor is
	// closer (by advertised position) to the destination.
	ErrVoid = errors.New("routing: greedy void (no neighbor makes progress)")
	// ErrHopLimit means the route exceeded MaxHops.
	ErrHopLimit = errors.New("routing: hop limit exceeded")
	// ErrNoLocation means an endpoint advertises no location.
	ErrNoLocation = errors.New("routing: endpoint has no advertised location")
)

// Route forwards greedily from src to dst and returns the node sequence
// (src first, dst last). At each step the packet moves to the neighbor
// whose advertised position is strictly closest to dst's advertised
// position; the route completes when dst itself is a neighbor.
func (r *Router) Route(src, dst wsn.NodeID) ([]wsn.NodeID, error) {
	dstPos, ok := r.locs(dst)
	if !ok {
		return nil, ErrNoLocation
	}
	if _, ok := r.locs(src); !ok {
		return nil, ErrNoLocation
	}
	maxHops := r.MaxHops
	if maxHops <= 0 {
		field := r.net.Model().Field()
		diag := field.Min.Dist(field.Max)
		maxHops = int(diag/r.net.Model().Range())*4 + 16
	}

	path := []wsn.NodeID{src}
	cur := src
	for hops := 0; ; hops++ {
		if cur == dst {
			return path, nil
		}
		if hops >= maxHops {
			return path, ErrHopLimit
		}
		curPos, ok := r.locs(cur)
		if !ok {
			// The current holder lost its location mid-route (gated).
			return path, ErrVoid
		}
		best := wsn.NodeID(-1)
		bestD := curPos.Dist(dstPos)
		for _, nb := range r.net.NeighborsOf(cur) {
			if nb == dst {
				best = dst
				break
			}
			p, ok := r.locs(nb)
			if !ok {
				continue // gated node: not eligible as a next hop
			}
			if d := p.Dist(dstPos); d < bestD {
				best, bestD = nb, d
			}
		}
		if best < 0 {
			return path, ErrVoid
		}
		path = append(path, best)
		cur = best
	}
}

// Stats aggregates routing outcomes over many (src, dst) pairs.
type Stats struct {
	Attempts  int
	Delivered int
	Voids     int
	HopLimit  int
	TotalHops int // over delivered routes
}

// DeliveryRate returns Delivered/Attempts.
func (s Stats) DeliveryRate() float64 {
	if s.Attempts == 0 {
		return 0
	}
	return float64(s.Delivered) / float64(s.Attempts)
}

// MeanHops returns the average hop count of delivered routes.
func (s Stats) MeanHops() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalHops) / float64(s.Delivered)
}

// Evaluate routes between the given pairs and aggregates outcomes.
func (r *Router) Evaluate(pairs [][2]wsn.NodeID) Stats {
	var s Stats
	for _, pr := range pairs {
		s.Attempts++
		path, err := r.Route(pr[0], pr[1])
		switch err {
		case nil:
			s.Delivered++
			s.TotalHops += len(path) - 1
		case ErrVoid, ErrNoLocation:
			s.Voids++
		case ErrHopLimit:
			s.HopLimit++
		}
	}
	return s
}
