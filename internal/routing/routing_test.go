package routing

import (
	"testing"

	"repro/internal/deploy"
	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/wsn"
)

func denseNet(seed uint64) *wsn.Network {
	cfg := deploy.Config{
		Field:     geom.NewRect(geom.Pt(0, 0), geom.Pt(600, 600)),
		GroupsX:   6,
		GroupsY:   6,
		GroupSize: 60,
		Sigma:     50,
		Range:     60,
		Layout:    deploy.LayoutGrid,
	}
	return wsn.Deploy(deploy.MustNew(cfg), rng.New(seed))
}

// interiorPairs returns routable pairs with both endpoints inside the
// field (Gaussian-tail exiles distort greedy forwarding).
func interiorPairs(net *wsn.Network, n int, seed uint64) [][2]wsn.NodeID {
	r := rng.New(seed)
	field := net.Model().Field()
	inner := geom.NewRect(
		geom.Pt(field.Min.X+60, field.Min.Y+60),
		geom.Pt(field.Max.X-60, field.Max.Y-60))
	var pairs [][2]wsn.NodeID
	for len(pairs) < n {
		a, _ := net.SampleNode(r)
		b, _ := net.SampleNode(r)
		if a == b {
			continue
		}
		if !inner.Contains(net.Node(a).Pos) || !inner.Contains(net.Node(b).Pos) {
			continue
		}
		pairs = append(pairs, [2]wsn.NodeID{a, b})
	}
	return pairs
}

func TestGreedyDeliversOnDenseNetwork(t *testing.T) {
	net := denseNet(1)
	router := NewRouter(net, TrueLocations(net))
	stats := router.Evaluate(interiorPairs(net, 80, 2))
	if dr := stats.DeliveryRate(); dr < 0.9 {
		t.Errorf("delivery rate = %v, want > 0.9 on a dense network", dr)
	}
	if stats.MeanHops() <= 0 {
		t.Error("mean hops should be positive")
	}
}

func TestRouteReachesDestination(t *testing.T) {
	net := denseNet(3)
	router := NewRouter(net, TrueLocations(net))
	pairs := interiorPairs(net, 20, 4)
	for _, pr := range pairs {
		path, err := router.Route(pr[0], pr[1])
		if err != nil {
			continue
		}
		if path[0] != pr[0] || path[len(path)-1] != pr[1] {
			t.Fatalf("path endpoints wrong: %v for pair %v", path, pr)
		}
		// Each hop must be a real radio link.
		for i := 1; i < len(path); i++ {
			d := net.Node(path[i-1]).Pos.Dist(net.Node(path[i]).Pos)
			if d > net.Model().Range()+1e-9 {
				t.Fatalf("hop %d–%d spans %.1f m > range", path[i-1], path[i], d)
			}
		}
	}
}

func TestRouteSelfDelivery(t *testing.T) {
	net := denseNet(5)
	router := NewRouter(net, TrueLocations(net))
	path, err := router.Route(7, 7)
	if err != nil || len(path) != 1 || path[0] != 7 {
		t.Errorf("self route = %v, %v", path, err)
	}
}

func TestForgedLocationsBreakRouting(t *testing.T) {
	net := denseNet(6)
	honest := NewRouter(net, TrueLocations(net)).Evaluate(interiorPairs(net, 60, 7))

	// A third of nodes advertise positions reflected across the field —
	// the aftermath of a successful localization attack.
	r := rng.New(8)
	forged := map[wsn.NodeID]geom.Point{}
	for i := 0; i < net.Len(); i++ {
		if r.Float64() < 0.33 {
			p := net.Node(wsn.NodeID(i)).Pos
			forged[wsn.NodeID(i)] = geom.Pt(600-p.X, 600-p.Y)
		}
	}
	lying := func(id wsn.NodeID) (geom.Point, bool) {
		if p, ok := forged[id]; ok {
			return p, true
		}
		return net.Node(id).Pos, true
	}
	attacked := NewRouter(net, lying).Evaluate(interiorPairs(net, 60, 7))
	if attacked.DeliveryRate() >= honest.DeliveryRate() {
		t.Errorf("forged locations should hurt delivery: honest %v, attacked %v",
			honest.DeliveryRate(), attacked.DeliveryRate())
	}

	// LAD-style gating: the forged nodes' locations fail verification, so
	// they advertise nothing and are skipped as next hops.
	gated := func(id wsn.NodeID) (geom.Point, bool) {
		if _, ok := forged[id]; ok {
			return geom.Point{}, false
		}
		return net.Node(id).Pos, true
	}
	// Gate only pairs whose endpoints survived.
	var pairs [][2]wsn.NodeID
	for _, pr := range interiorPairs(net, 120, 7) {
		if _, bad := forged[pr[0]]; bad {
			continue
		}
		if _, bad := forged[pr[1]]; bad {
			continue
		}
		pairs = append(pairs, pr)
		if len(pairs) == 60 {
			break
		}
	}
	recovered := NewRouter(net, gated).Evaluate(pairs)
	if recovered.DeliveryRate() <= attacked.DeliveryRate() {
		t.Errorf("gating should restore delivery: attacked %v, gated %v",
			attacked.DeliveryRate(), recovered.DeliveryRate())
	}
}

func TestNoLocationEndpoints(t *testing.T) {
	net := denseNet(9)
	none := func(wsn.NodeID) (geom.Point, bool) { return geom.Point{}, false }
	router := NewRouter(net, none)
	if _, err := router.Route(0, 1); err != ErrNoLocation {
		t.Errorf("err = %v, want ErrNoLocation", err)
	}
}

func TestHopLimit(t *testing.T) {
	net := denseNet(10)
	router := NewRouter(net, TrueLocations(net))
	router.MaxHops = 1
	pairs := interiorPairs(net, 30, 11)
	sawLimit := false
	for _, pr := range pairs {
		if _, err := router.Route(pr[0], pr[1]); err == ErrHopLimit {
			sawLimit = true
			break
		}
	}
	if !sawLimit {
		t.Error("one-hop limit should trip on some long pair")
	}
}

func TestStatsArithmetic(t *testing.T) {
	s := Stats{Attempts: 4, Delivered: 2, TotalHops: 10}
	if s.DeliveryRate() != 0.5 || s.MeanHops() != 5 {
		t.Errorf("stats = %+v", s)
	}
	var zero Stats
	if zero.DeliveryRate() != 0 || zero.MeanHops() != 0 {
		t.Error("zero stats should be zero")
	}
}
