// Package auth provides the security mechanisms the paper invokes when
// distinguishing Dec-Bounded from Dec-Only attacks (Section 6.2): if
// "authentication mechanisms along with the wormhole detection mechanism"
// are deployed, impersonation, multi-impersonation and range-change
// attacks are neutralized and the adversary is limited to silence attacks.
//
// Two mechanisms are implemented:
//
//   - Pairwise message authentication. Every node is provisioned (before
//     deployment, by the trusted operator) with a per-node key derived
//     from a network master key: K_i = HMAC(K_master, node id). A HELLO
//     from node i carries HMAC(K_i, sender || group). Verifiers re-derive
//     K_i; a compromised node can still authenticate as *itself* (its key
//     is in the attacker's hands) but cannot forge other identities or
//     bind its identity to a different group id than the one registered
//     at provisioning time.
//
//   - Geographic packet leashes (Hu, Perrig, Johnson — ref [15]). Each
//     message is bound to the sender's claimed transmission origin; a
//     receiver drops packets whose claimed origin is farther than the
//     nominal range. A wormhole replaying packets far away fails the
//     leash.
package auth

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/geom"
)

// TagSize is the truncated MAC length in bytes. Eight bytes is ample for
// a simulation and mirrors the truncated MACs used on real motes.
const TagSize = 8

// Authority holds the network master secret and the provisioning records
// (node → group bindings) established before deployment. In a real
// deployment the authority is offline; here it doubles as the verifier
// oracle nodes use (every node can derive any K_i from pre-loaded data in
// the scheme this simplifies).
type Authority struct {
	master []byte
	group  map[int32]int // provisioning record: node id → group id
}

// NewAuthority creates an authority with the given master secret.
func NewAuthority(master []byte) *Authority {
	cp := append([]byte(nil), master...)
	return &Authority{master: cp, group: make(map[int32]int)}
}

// Provision registers a node's true group before deployment and returns
// the node's key.
func (a *Authority) Provision(node int32, group int) []byte {
	a.group[node] = group
	return a.nodeKey(node)
}

// ProvisionedGroup returns the group recorded for a node at provisioning
// time, with ok=false for unknown nodes.
func (a *Authority) ProvisionedGroup(node int32) (int, bool) {
	g, ok := a.group[node]
	return g, ok
}

func (a *Authority) nodeKey(node int32) []byte {
	mac := hmac.New(sha256.New, a.master)
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(node))
	mac.Write(buf[:])
	return mac.Sum(nil)
}

// Tag computes the authentication tag binding (sender, group).
func (a *Authority) Tag(node int32, group int) []byte {
	mac := hmac.New(sha256.New, a.nodeKey(node))
	var buf [8]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(node))
	binary.LittleEndian.PutUint32(buf[4:], uint32(group))
	mac.Write(buf[:])
	return mac.Sum(nil)[:TagSize]
}

// Verify checks that tag authenticates (sender, group) AND that the
// claimed group matches the provisioning record. A compromised node
// holding its own key therefore still cannot impersonate another group:
// the binding was fixed before deployment.
func (a *Authority) Verify(node int32, group int, tag []byte) bool {
	want, ok := a.group[node]
	if !ok || want != group {
		return false
	}
	return hmac.Equal(tag, a.Tag(node, group))
}

// Leash is a geographic packet leash: it rejects messages whose true
// transmission origin is farther from the receiver than the nominal
// range plus a small tolerance. Wormhole-replayed packets originate at
// the far tunnel endpoint and fail this check.
type Leash struct {
	// MaxRange is the nominal transmission range.
	MaxRange float64
	// Slack absorbs ranging error; 0 means exact.
	Slack float64
}

// Check reports whether a message claimed to originate at origin is
// plausible for a receiver at rx.
func (l Leash) Check(rx, origin geom.Point) bool {
	return rx.Dist(origin) <= l.MaxRange+l.Slack
}
