package auth

import (
	"testing"

	"repro/internal/geom"
)

func TestTagVerifyRoundTrip(t *testing.T) {
	a := NewAuthority([]byte("master-secret"))
	a.Provision(7, 3)
	tag := a.Tag(7, 3)
	if len(tag) != TagSize {
		t.Fatalf("tag size = %d", len(tag))
	}
	if !a.Verify(7, 3, tag) {
		t.Error("valid tag rejected")
	}
}

func TestVerifyRejectsWrongGroup(t *testing.T) {
	a := NewAuthority([]byte("master-secret"))
	a.Provision(7, 3)
	// A compromised node 7 holds its own key and can compute tags for any
	// group — but the provisioning record pins it to group 3.
	forged := a.Tag(7, 9)
	if a.Verify(7, 9, forged) {
		t.Error("impersonation of another group should fail against provisioning record")
	}
}

func TestVerifyRejectsForgedSender(t *testing.T) {
	a := NewAuthority([]byte("master-secret"))
	a.Provision(7, 3)
	a.Provision(8, 4)
	// Node 7 cannot produce node 8's tag without K_8 — simulate a forgery
	// by tagging with the wrong identity's key stream.
	tag7 := a.Tag(7, 3)
	if a.Verify(8, 4, tag7) {
		t.Error("tag for node 7 must not verify as node 8")
	}
}

func TestVerifyRejectsUnprovisioned(t *testing.T) {
	a := NewAuthority([]byte("m"))
	tag := a.Tag(55, 1)
	if a.Verify(55, 1, tag) {
		t.Error("unprovisioned node should not verify")
	}
}

func TestVerifyRejectsTamperedTag(t *testing.T) {
	a := NewAuthority([]byte("m"))
	a.Provision(1, 0)
	tag := a.Tag(1, 0)
	tag[0] ^= 0xff
	if a.Verify(1, 0, tag) {
		t.Error("tampered tag should fail")
	}
}

func TestDifferentMastersDiffer(t *testing.T) {
	a := NewAuthority([]byte("alpha"))
	b := NewAuthority([]byte("beta"))
	a.Provision(1, 0)
	b.Provision(1, 0)
	if b.Verify(1, 0, a.Tag(1, 0)) {
		t.Error("tag from a different master key should not verify")
	}
}

func TestProvisionedGroup(t *testing.T) {
	a := NewAuthority([]byte("m"))
	a.Provision(3, 12)
	if g, ok := a.ProvisionedGroup(3); !ok || g != 12 {
		t.Errorf("ProvisionedGroup = %d, %v", g, ok)
	}
	if _, ok := a.ProvisionedGroup(4); ok {
		t.Error("unknown node should report !ok")
	}
}

func TestMasterKeyCopied(t *testing.T) {
	secret := []byte("mutate-me")
	a := NewAuthority(secret)
	a.Provision(1, 0)
	tagBefore := a.Tag(1, 0)
	secret[0] = 'X' // caller mutates its buffer; authority must be isolated
	if !a.Verify(1, 0, tagBefore) {
		t.Error("authority must copy the master secret")
	}
}

func TestLeash(t *testing.T) {
	l := Leash{MaxRange: 50}
	rx := geom.Pt(0, 0)
	if !l.Check(rx, geom.Pt(30, 40)) { // dist 50, exactly at range
		t.Error("in-range origin rejected")
	}
	if l.Check(rx, geom.Pt(60, 0)) {
		t.Error("out-of-range origin accepted (wormhole would pass)")
	}
	slack := Leash{MaxRange: 50, Slack: 15}
	if !slack.Check(rx, geom.Pt(60, 0)) {
		t.Error("slack should tolerate small overshoot")
	}
	if slack.Check(rx, geom.Pt(200, 0)) {
		t.Error("distant wormhole endpoint must still fail")
	}
}
